package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak flags goroutine-leak shapes the serving stack must never grow:
//
//   - `time.After` inside a loop: each iteration arms a timer the
//     runtime cannot collect until it fires; a tight retry loop pins an
//     unbounded number of them. Use time.NewTimer and reuse it.
//   - A goroutine whose body contains an unconditional `for {}` loop
//     with no exit path. Exits are return, goto, labeled break, a plain
//     break at the loop's own level, panic, os.Exit, or runtime.Goexit.
//     A plain `break` inside a select or switch exits only the select —
//     the classic break-leaves-select-not-the-loop bug — so it does not
//     count.
//   - A goroutine sending on an unbuffered channel whose only receive
//     in the launching function sits in a multi-way select (or there is
//     no receive at all): if the receiver takes another arm and moves
//     on, the sender blocks forever. Buffer the channel.
//
// Loops ranging over a channel are exempt from the exit-path rule: they
// terminate when the channel closes, which is the join protocol the
// worker pool uses.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc: "goroutines must have a cancellation or join path: no time.After in loops, " +
		"no exit-free infinite loops, no unbuffered sends the receiver may abandon",
	Run: runGoLeak,
}

func runGoLeak(pass *Pass) error {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.ObjectOf(fd.Name); obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		funcScopes(f, func(body *ast.BlockStmt) {
			goleakTimeAfter(pass, body)
			goleakGoroutines(pass, decls, body)
			goleakUnbufferedSends(pass, body)
		})
	}
	return nil
}

// goleakTimeAfter flags time.After calls inside any loop of the scope.
func goleakTimeAfter(pass *Pass, body *ast.BlockStmt) {
	reported := map[token.Pos]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			loopBody = loop.Body
		case *ast.RangeStmt:
			loopBody = loop.Body
		default:
			return true
		}
		inspectShallow(loopBody, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := pkgCall(pass, call, timePath); ok && name == "After" && !reported[call.Pos()] {
				reported[call.Pos()] = true
				pass.Reportf(call.Pos(), "time.After in a loop arms a new timer per iteration; use time.NewTimer and reuse it")
			}
			return true
		})
		return true
	})
}

// goleakGoroutines flags `go` statements whose body (a function literal,
// or a same-package function) contains an unconditional infinite loop
// with no exit path.
func goleakGoroutines(pass *Pass, decls map[types.Object]*ast.FuncDecl, body *ast.BlockStmt) {
	inspectShallow(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			if loop := exitFreeLoop(lit.Body); loop != nil {
				pass.Reportf(loop.Pos(), "goroutine loop has no exit path: no return, labeled break, or break at loop level (break inside select/switch does not leave the loop)")
			}
			return true
		}
		obj := calleeObject(pass, g.Call)
		if fd, ok := decls[obj]; ok {
			if loop := exitFreeLoop(fd.Body); loop != nil {
				pass.Reportf(g.Pos(), "goroutine runs %s, whose infinite loop has no exit path", obj.Name())
			}
		}
		return true
	})
}

// exitFreeLoop returns the first `for {}` loop in body (not descending
// into nested function literals) that has no exit path, or nil.
func exitFreeLoop(body *ast.BlockStmt) *ast.ForStmt {
	var found *ast.ForStmt
	inspectShallow(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !stmtsHaveExit(loop.Body.List, false) {
			found = loop
			return false
		}
		return true
	})
	return found
}

// stmtsHaveExit reports whether any statement escapes the enclosing
// loop. nested marks statements inside a construct that captures a plain
// break (select, switch, inner loop).
func stmtsHaveExit(list []ast.Stmt, nested bool) bool {
	for _, s := range list {
		if stmtHasExit(s, nested) {
			return true
		}
	}
	return false
}

func stmtHasExit(s ast.Stmt, nested bool) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			return s.Label != nil || !nested
		case token.GOTO:
			return true
		}
		return false
	case *ast.ExprStmt:
		return terminalCall(s.X)
	case *ast.LabeledStmt:
		return stmtHasExit(s.Stmt, nested)
	case *ast.BlockStmt:
		return stmtsHaveExit(s.List, nested)
	case *ast.IfStmt:
		if stmtsHaveExit(s.Body.List, nested) {
			return true
		}
		if s.Else != nil {
			return stmtHasExit(s.Else, nested)
		}
		return false
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok && stmtsHaveExit(cc.Body, true) {
				return true
			}
		}
		return false
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok && stmtsHaveExit(cc.Body, true) {
				return true
			}
		}
		return false
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && stmtsHaveExit(cc.Body, true) {
				return true
			}
		}
		return false
	case *ast.ForStmt:
		return stmtsHaveExit(s.Body.List, true)
	case *ast.RangeStmt:
		return stmtsHaveExit(s.Body.List, true)
	}
	return false
}

// terminalCall reports whether expr is a call that never returns: panic,
// os.Exit, runtime.Goexit, or log.Fatal*.
func terminalCall(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name {
		case "os":
			return fun.Sel.Name == "Exit"
		case "runtime":
			return fun.Sel.Name == "Goexit"
		case "log":
			switch fun.Sel.Name {
			case "Fatal", "Fatalf", "Fatalln":
				return true
			}
		}
	}
	return false
}

// goleakUnbufferedSends flags goroutine sends on locally-made unbuffered
// channels whose receive is not guaranteed to run.
func goleakUnbufferedSends(pass *Pass, body *ast.BlockStmt) {
	// Unbuffered channels made in this scope.
	unbuffered := map[types.Object]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !makesUnbufferedChan(pass, call) {
			return
		}
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil {
				unbuffered[obj] = true
			}
		}
	}
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	if len(unbuffered) == 0 {
		return
	}

	// Goroutine function literals launched in this scope; sends inside
	// them are the hazard sites, receives inside them don't guarantee
	// anything to the launcher.
	goLits := map[*ast.FuncLit]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				goLits[lit] = true
			}
		}
		return true
	})

	type recvInfo struct {
		unconditional bool // plain <-ch, single-case select, or range
		conditional   bool // inside a select with other ways out
	}
	recvs := map[types.Object]*recvInfo{}
	escaped := map[types.Object]bool{}
	type send struct {
		pos token.Pos
		obj types.Object
	}
	var sends []send

	// chanUse classifies one identifier occurrence of a tracked channel.
	chanObj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := pass.ObjectOf(id)
		if obj != nil && unbuffered[obj] {
			return obj
		}
		return nil
	}
	note := func(obj types.Object) *recvInfo {
		ri := recvs[obj]
		if ri == nil {
			ri = &recvInfo{}
			recvs[obj] = ri
		}
		return ri
	}

	// Walk the whole function (including nested literals) classifying
	// every occurrence. selDepth tracks enclosing multi-way selects;
	// goDepth tracks enclosing goroutine literals.
	var walk func(n ast.Node, selConditional bool, inGo bool)
	walk = func(n ast.Node, selConditional bool, inGo bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// Recurse manually so inGo tracks goroutine literals.
				if n.Body != nil {
					walk(n.Body, selConditional, inGo || goLits[n])
				}
				return false
			case *ast.SelectStmt:
				multi := len(n.Body.List) >= 2
				for _, c := range n.Body.List {
					cc, ok := c.(*ast.CommClause)
					if !ok {
						continue
					}
					if cc.Comm != nil {
						walk(cc.Comm, selConditional || multi, inGo)
					}
					for _, s := range cc.Body {
						walk(s, selConditional, inGo)
					}
				}
				return false
			case *ast.SendStmt:
				if obj := chanObj(n.Chan); obj != nil {
					if inGo {
						sends = append(sends, send{pos: n.Pos(), obj: obj})
					} else {
						// A send on the launcher side is a rendezvous the
						// launcher controls; not this analyzer's hazard.
						escaped[obj] = true
					}
					walk(n.Value, selConditional, inGo)
					return false
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if obj := chanObj(n.X); obj != nil {
						ri := note(obj)
						if inGo {
							// Receive inside another goroutine: can't
							// reason about it, treat as a guarantee.
							ri.unconditional = true
						} else if selConditional {
							ri.conditional = true
						} else {
							ri.unconditional = true
						}
						return false
					}
				}
			case *ast.RangeStmt:
				if obj := chanObj(n.X); obj != nil {
					note(obj).unconditional = true
				}
			case *ast.CallExpr:
				// close(ch), len(ch), cap(ch) are fine; any other call
				// taking the channel hands the receive duty elsewhere.
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					switch id.Name {
					case "close", "len", "cap", "make":
						return true
					}
				}
				for _, arg := range n.Args {
					if obj := chanObj(arg); obj != nil {
						escaped[obj] = true
					}
				}
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					if obj := chanObj(rhs); obj != nil {
						if call, ok := ast.Unparen(rhs).(*ast.CallExpr); !ok || !makesUnbufferedChan(pass, call) {
							escaped[obj] = true
						}
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if obj := chanObj(r); obj != nil {
						escaped[obj] = true
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					e := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						e = kv.Value
					}
					if obj := chanObj(e); obj != nil {
						escaped[obj] = true
					}
				}
			}
			return true
		})
	}
	walk(body, false, false)

	for _, s := range sends {
		if escaped[s.obj] {
			continue
		}
		ri := recvs[s.obj]
		if ri != nil && ri.unconditional {
			continue
		}
		if ri != nil && ri.conditional {
			pass.Reportf(s.pos, "goroutine sends on unbuffered channel %s, but the receive sits in a multi-way select; if the receiver takes another arm the sender blocks forever (buffer the channel)", s.obj.Name())
		} else {
			pass.Reportf(s.pos, "goroutine sends on unbuffered channel %s with no receive in the launching function; the sender can block forever", s.obj.Name())
		}
	}
}

// makesUnbufferedChan reports whether call is make(chan T) or
// make(chan T, 0) with a constant zero capacity.
func makesUnbufferedChan(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if b, ok := pass.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return false
	}
	if len(call.Args) < 2 {
		return true
	}
	tv, ok := pass.TypesInfo.Types[call.Args[1]]
	return ok && tv.Value != nil && tv.Value.String() == "0"
}
