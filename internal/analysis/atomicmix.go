package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags the two ways a sync/atomic discipline silently decays:
//
//   - A variable or field is accessed through sync/atomic in one place
//     (atomic.LoadInt64(&s.n), atomic.AddInt64(&s.n, 1), ...) and through
//     a plain load or store in another. The plain access races with the
//     atomic one — the race detector only catches the interleavings a
//     test happens to produce.
//   - A struct containing atomics — sync/atomic typed values
//     (atomic.Int64, atomic.Pointer[T], ...) or fields accessed with the
//     raw atomic functions — is copied by value: receiver, parameter,
//     assignment, or range variable. The copy tears the atomic's
//     publication protocol exactly the way the snapshot store's
//     atomic-pointer tables must never be torn.
//
// The analysis is per package: a field counts as atomically accessed if
// any file of the package touches it through sync/atomic.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "variables accessed with sync/atomic must not also be accessed plainly, " +
		"and structs containing atomics must not be copied by value",
	Run: runAtomicMix,
}

// atomicTypeNames are the sync/atomic value types whose containment makes
// a struct copy-hostile.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: collect every variable reached through a raw sync/atomic
	// call (`atomic.X(&v, ...)`), and the identifier nodes of those
	// sanctioned accesses.
	raw := map[*types.Var]bool{}
	sanctioned := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := pkgCall(pass, call, "sync/atomic"); !ok || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			var id *ast.Ident
			switch target := ast.Unparen(addr.X).(type) {
			case *ast.SelectorExpr:
				id = target.Sel
			case *ast.Ident:
				id = target
			default:
				return true
			}
			if v, ok := pass.ObjectOf(id).(*types.Var); ok {
				raw[v] = true
				sanctioned[id] = true
			}
			return true
		})
	}

	// Pass 2: flag plain uses of the same variables. Composite-literal
	// keys are construction, not access, and are exempt.
	for _, f := range pass.Files {
		exempt := map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			for _, elt := range cl.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						exempt[id] = true
					}
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id] || exempt[id] {
				return true
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok || !raw[v] {
				return true
			}
			pass.Reportf(id.Pos(), "plain access of %s, which is accessed with sync/atomic elsewhere in this package", v.Name())
			return true
		})
	}

	// Pass 3: by-value copies of atomic-containing structs.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				check := func(fl *ast.FieldList, kind string) {
					if fl == nil {
						return
					}
					for _, field := range fl.List {
						t := pass.TypeOf(field.Type)
						if t == nil {
							continue
						}
						if path := atomicPath(t, raw, nil); path != "" {
							pass.Reportf(field.Pos(), "%s of %s copies %s", kind, n.Name.Name, path)
						}
					}
				}
				check(n.Recv, "receiver")
				check(n.Type.Params, "parameter")
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue // a discard copies nothing observable
					}
					if !copiesExisting(rhs) {
						continue
					}
					t := pass.TypeOf(rhs)
					if t == nil {
						continue
					}
					if path := atomicPath(t, raw, nil); path != "" {
						pass.Reportf(rhs.Pos(), "assignment copies %s", path)
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				t := pass.TypeOf(n.Value)
				if t == nil {
					return true
				}
				if path := atomicPath(t, raw, nil); path != "" {
					pass.Reportf(n.Value.Pos(), "range variable copies %s per iteration", path)
				}
			}
			return true
		})
	}
	return nil
}

// copiesExisting reports whether expr reads an existing value (so
// assigning it copies), as opposed to constructing a fresh one.
func copiesExisting(expr ast.Expr) bool {
	switch ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// atomicPath returns a human-readable path to the first atomic found
// inside t, or "" if t holds none. raw is the package's set of fields
// accessed through the raw sync/atomic functions. A pointer stops the
// search: pointed-to atomics are shared, not copied.
func atomicPath(t types.Type, raw map[*types.Var]bool, seen []*types.Named) string {
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicTypeNames[obj.Name()] {
			return "atomic." + obj.Name()
		}
		for _, s := range seen {
			if s == tt {
				return ""
			}
		}
		if inner := atomicPath(tt.Underlying(), raw, append(seen, tt)); inner != "" {
			return obj.Name() + " contains " + inner
		}
		return ""
	case *types.Alias:
		return atomicPath(types.Unalias(tt), raw, seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			f := tt.Field(i)
			if raw[f] {
				return "field " + f.Name() + ", which is accessed with sync/atomic"
			}
			if inner := atomicPath(f.Type(), raw, seen); inner != "" {
				if f.Embedded() {
					return inner
				}
				return "field " + f.Name() + " is " + inner
			}
		}
		return ""
	case *types.Array:
		return atomicPath(tt.Elem(), raw, seen)
	default:
		return ""
	}
}
