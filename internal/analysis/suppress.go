package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// suppressPrefix introduces a suppression directive comment. Grammar:
//
//	//spotverse:allow <analyzer> <reason...>
//
// placed either on the line immediately above the finding or trailing on
// the finding's own line. <analyzer> is one suite analyzer name or
// "all"; <reason> is mandatory free text explaining why the invariant is
// intentionally waived at this site.
const suppressPrefix = "//spotverse:allow"

// directive is one parsed //spotverse:allow comment.
type directive struct {
	analyzer string
	reason   string
	pos      token.Pos
	line     int
	file     string
}

// parseDirectives scans a file's comments for suppression directives.
// Malformed ones (missing analyzer, missing reason, or unknown analyzer
// name) are reported as "directive" findings so they cannot silently
// fail to suppress.
func parseDirectives(fset *token.FileSet, f *ast.File, known map[string]bool) (ok []directive, bad []Diagnostic) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, suppressPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, suppressPrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //spotverse:allowed — not ours
			}
			// The reason ends at an embedded "//" so fixture `// want`
			// markers can share the comment.
			if i := strings.Index(rest, "//"); i >= 0 {
				rest = rest[:i]
			}
			fields := strings.Fields(rest)
			pos := fset.Position(c.Pos())
			malformed := func(msg string) {
				bad = append(bad, Diagnostic{
					Analyzer: "directive",
					Pos:      c.Pos(),
					Position: pos,
					Message:  msg,
				})
			}
			if len(fields) == 0 {
				malformed("spotverse:allow needs an analyzer name and a reason")
				continue
			}
			name := fields[0]
			if name != "all" && !known[name] {
				malformed("spotverse:allow names unknown analyzer " + strconv.Quote(name))
				continue
			}
			if len(fields) < 2 {
				malformed("spotverse:allow " + name + " needs a reason")
				continue
			}
			ok = append(ok, directive{
				analyzer: name,
				reason:   strings.Join(fields[1:], " "),
				pos:      c.Pos(),
				line:     pos.Line,
				file:     pos.Filename,
			})
		}
	}
	return ok, bad
}

// filterSuppressed drops findings covered by a well-formed directive on
// the same or the preceding line, and appends findings for malformed
// directives. known is the set of valid analyzer names. The second
// result is the suppression inventory for this package: one record per
// well-formed directive, flagged Used when it absorbed a finding.
func filterSuppressed(fset *token.FileSet, files []*ast.File, diags []Diagnostic, known map[string]bool) ([]Diagnostic, []Suppression) {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	// allow maps covered (file, line, analyzer) to the covering
	// directive's index in dirs, so a hit can mark it used.
	allow := map[key]int{}
	var dirs []directive
	var out []Diagnostic
	for _, f := range files {
		ok, bad := parseDirectives(fset, f, known)
		out = append(out, bad...)
		for _, d := range ok {
			idx := len(dirs)
			dirs = append(dirs, d)
			// A directive covers its own line (trailing comment) and
			// the next line (comment above the finding).
			allow[key{d.file, d.line, d.analyzer}] = idx
			allow[key{d.file, d.line + 1, d.analyzer}] = idx
		}
	}
	used := make([]bool, len(dirs))
	for _, d := range diags {
		if d.Analyzer != "directive" {
			if idx, ok := allow[key{d.Position.Filename, d.Position.Line, d.Analyzer}]; ok {
				used[idx] = true
				continue
			}
			if idx, ok := allow[key{d.Position.Filename, d.Position.Line, "all"}]; ok {
				used[idx] = true
				continue
			}
		}
		out = append(out, d)
	}
	sups := make([]Suppression, len(dirs))
	for i, d := range dirs {
		sups[i] = Suppression{
			File:     d.file,
			Line:     d.line,
			Analyzer: d.analyzer,
			Reason:   d.reason,
			Used:     used[i],
		}
	}
	return out, sups
}
