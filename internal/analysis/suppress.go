package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// suppressPrefix introduces a suppression directive comment. Grammar:
//
//	//spotverse:allow <analyzer> <reason...>
//
// placed either on the line immediately above the finding or trailing on
// the finding's own line. <analyzer> is one suite analyzer name or
// "all"; <reason> is mandatory free text explaining why the invariant is
// intentionally waived at this site.
const suppressPrefix = "//spotverse:allow"

// directive is one parsed //spotverse:allow comment.
type directive struct {
	analyzer string
	reason   string
	pos      token.Pos
	line     int
	file     string
}

// parseDirectives scans a file's comments for suppression directives.
// Malformed ones (missing analyzer, missing reason, or unknown analyzer
// name) are reported as "directive" findings so they cannot silently
// fail to suppress.
func parseDirectives(fset *token.FileSet, f *ast.File, known map[string]bool) (ok []directive, bad []Diagnostic) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, suppressPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, suppressPrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //spotverse:allowed — not ours
			}
			// The reason ends at an embedded "//" so fixture `// want`
			// markers can share the comment.
			if i := strings.Index(rest, "//"); i >= 0 {
				rest = rest[:i]
			}
			fields := strings.Fields(rest)
			pos := fset.Position(c.Pos())
			malformed := func(msg string) {
				bad = append(bad, Diagnostic{
					Analyzer: "directive",
					Pos:      c.Pos(),
					Position: pos,
					Message:  msg,
				})
			}
			if len(fields) == 0 {
				malformed("spotverse:allow needs an analyzer name and a reason")
				continue
			}
			name := fields[0]
			if name != "all" && !known[name] {
				malformed("spotverse:allow names unknown analyzer " + strconv.Quote(name))
				continue
			}
			if len(fields) < 2 {
				malformed("spotverse:allow " + name + " needs a reason")
				continue
			}
			ok = append(ok, directive{
				analyzer: name,
				reason:   strings.Join(fields[1:], " "),
				pos:      c.Pos(),
				line:     pos.Line,
				file:     pos.Filename,
			})
		}
	}
	return ok, bad
}

// filterSuppressed drops findings covered by a well-formed directive on
// the same or the preceding line, and appends findings for malformed
// directives. known is the set of valid analyzer names.
func filterSuppressed(fset *token.FileSet, files []*ast.File, diags []Diagnostic, known map[string]bool) []Diagnostic {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	allow := map[key]bool{}
	var out []Diagnostic
	for _, f := range files {
		dirs, bad := parseDirectives(fset, f, known)
		out = append(out, bad...)
		for _, d := range dirs {
			// A directive covers its own line (trailing comment) and
			// the next line (comment above the finding).
			allow[key{d.file, d.line, d.analyzer}] = true
			allow[key{d.file, d.line + 1, d.analyzer}] = true
		}
	}
	for _, d := range diags {
		if d.Analyzer != "directive" &&
			(allow[key{d.Position.Filename, d.Position.Line, d.Analyzer}] ||
				allow[key{d.Position.Filename, d.Position.Line, "all"}]) {
			continue
		}
		out = append(out, d)
	}
	return out
}
