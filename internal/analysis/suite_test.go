package analysis_test

import (
	"testing"

	"spotverse/internal/analysis"
	"spotverse/internal/analysis/analysistest"
)

// Each analyzer gets at least one fixture package proving it fires and
// one site proving //spotverse:allow suppresses it; allowlist and scope
// rules are proven by fixtures whose import paths mirror real package
// paths.

func TestDetRand(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DetRand,
		"detrand/a",
		"spotverse/cmd/clifixture",
	)
}

func TestMapIter(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MapIter, "mapiter/a")
}

func TestSeedFlow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.SeedFlow,
		"spotverse/internal/experiment/seedfix",
		"seedflow/outofscope",
	)
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.ErrDrop, "errdrop/a")
}

func TestLocks(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Locks, "locks/a")
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockOrder, "lockorder/a")
}

func TestGoLeak(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.GoLeak, "goleak/a")
}

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.AtomicMix, "atomicmix/a")
}

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotPath, "hotpath/a")
}

func TestSelect(t *testing.T) {
	got, err := analysis.Select([]string{"mapiter", "detrand"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "detrand" || got[1].Name != "mapiter" {
		t.Fatalf("Select returned %v, want suite order [detrand mapiter]", names(got))
	}
	if _, err := analysis.Select([]string{"nope"}); err == nil {
		t.Fatal("Select accepted unknown analyzer name")
	}
}

func names(as []*analysis.Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

// TestSuiteCleanOnTree is the self-gate: the repository's own packages
// must lint clean. A deliberate time.Now() seeded anywhere outside the
// allowlist turns this red locally exactly as the CI lint job does.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.Run(pkgs, analysis.Suite())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
