package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Import paths the analyzers reason about.
const (
	modulePath   = "spotverse"
	simclockPath = "spotverse/internal/simclock"
	mathRandPath = "math/rand"
	timePath     = "time"
)

// pkgPathOf returns the import path of the package an identifier names
// (via an import), or "" if the identifier is not a package name.
func pkgPathOf(pass *Pass, id *ast.Ident) string {
	if pn, ok := pass.ObjectOf(id).(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// pkgCall reports whether call invokes a package-level name of the
// package imported from path (e.g. time.Now, sort.Strings), returning
// the name.
func pkgCall(pass *Pass, call *ast.CallExpr, path string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pkgPathOf(pass, id) != path {
		return "", false
	}
	return sel.Sel.Name, true
}

// calleeObject resolves the function or method object a call invokes,
// or nil for calls through function values, conversions, and builtins.
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.ObjectOf(fun)
	case *ast.SelectorExpr:
		return pass.ObjectOf(fun.Sel)
	}
	return nil
}

// calleePkgPath returns the import path of the package defining the
// called function or method, or "".
func calleePkgPath(pass *Pass, call *ast.CallExpr) string {
	obj := calleeObject(pass, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isAppendTo reports whether call is `append(target, ...)` for the given
// variable object.
func isAppendTo(pass *Pass, call *ast.CallExpr, target types.Object) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if b, ok := pass.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	argID, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && pass.ObjectOf(argID) == target
}

// usesObject reports whether the subtree references obj.
func usesObject(pass *Pass, n ast.Node, obj types.Object) bool {
	if n == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// namedType unwraps pointers and aliases down to a named type, or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// isNamed reports whether t is (a pointer to) the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// inModule reports whether path belongs to this module.
func inModule(path string) bool {
	return path == modulePath || strings.HasPrefix(path, modulePath+"/")
}

// hasPathPrefix reports whether path equals prefix or sits beneath it.
func hasPathPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// funcScopes walks a file and calls fn once per function body —
// declarations and literals — with the body's statements. Analyzers use
// this so loop/return reasoning stays confined to the innermost
// function.
func funcScopes(f *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Body)
			}
		case *ast.FuncLit:
			if d.Body != nil {
				fn(d.Body)
			}
		}
		return true
	})
}

// inspectShallow walks the subtree rooted at n but does not descend into
// nested function literals: their statements belong to a different
// function scope.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != nil {
			return false
		}
		return fn(n)
	})
}
