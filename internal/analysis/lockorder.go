package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the interprocedural mutex-acquisition graph across
// every loaded package and flags cycles: two lock classes acquired in
// both orders somewhere in the module are a deadlock the scheduler will
// eventually find, even if no single test does.
//
// Lock classes are type-level, not instance-level: every sync.Mutex or
// sync.RWMutex reached as a field of a named type T collapses to the
// class "pkg.T.field", and package-level mutexes to "pkg.var". Locks on
// local variables have no stable class and are skipped, as are
// self-edges (two instances of the same class may be ordered by address
// or by construction — the analyzer cannot tell).
//
// Within one function, acquisitions are tracked in source order;
// Unlock/RUnlock releases the class, and a deferred unlock keeps it held
// to the end of the function. A call made while holding a class links it
// to every class the callee (transitively, to depth 4) acquires.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "mutexes must be acquired in one global order: a cycle in the " +
		"module-wide acquisition graph is a latent deadlock",
	RunModule: runLockOrder,
}

// lockOrderDepth bounds the transitive callee search for acquisitions.
const lockOrderDepth = 4

const (
	evLock = iota
	evUnlock
	evCall
)

// lockEvent is one acquisition-relevant action, in source order.
type lockEvent struct {
	kind   int
	class  string // evLock/evUnlock
	callee string // evCall
	pos    token.Pos
	pass   *Pass
}

type lockFuncInfo struct {
	events []lockEvent
	direct []string // classes locked anywhere in the body
}

func runLockOrder(mp *ModulePass) error {
	funcs := map[string]*lockFuncInfo{}
	var keys []string
	for _, pkg := range mp.Pkgs {
		pass := mp.Pass(pkg)
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pass.ObjectOf(fd.Name).(*types.Func)
				if !ok {
					continue
				}
				key := funcKeyOf(fn)
				info := collectLockEvents(pass, fd.Body)
				funcs[key] = info
				keys = append(keys, key)
			}
		}
	}

	// acquires resolves the classes a call to key can take, to the
	// remaining depth, cutting recursion on revisit.
	var acquires func(key string, depth int, onPath map[string]bool) []string
	acquires = func(key string, depth int, onPath map[string]bool) []string {
		info := funcs[key]
		if info == nil || depth == 0 || onPath[key] {
			return nil
		}
		onPath[key] = true
		defer delete(onPath, key)
		set := map[string]bool{}
		for _, c := range info.direct {
			set[c] = true
		}
		for _, ev := range info.events {
			if ev.kind != evCall {
				continue
			}
			for _, c := range acquires(ev.callee, depth-1, onPath) {
				set[c] = true
			}
		}
		out := make([]string, 0, len(set))
		for c := range set {
			out = append(out, c)
		}
		sort.Strings(out)
		return out
	}

	// Build the held-while-acquiring edge set, keeping the first site
	// per edge (keys iterated in deterministic order).
	type edge struct{ from, to string }
	type site struct {
		pos  token.Pos
		pass *Pass
	}
	edges := map[edge]site{}
	addEdge := func(from, to string, ev lockEvent) {
		if from == to {
			return
		}
		e := edge{from, to}
		if _, ok := edges[e]; !ok {
			edges[e] = site{pos: ev.pos, pass: ev.pass}
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		info := funcs[key]
		var held []string
		for _, ev := range info.events {
			switch ev.kind {
			case evLock:
				for _, h := range held {
					addEdge(h, ev.class, ev)
				}
				held = append(held, ev.class)
			case evUnlock:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == ev.class {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case evCall:
				if len(held) == 0 {
					continue
				}
				for _, c := range acquires(ev.callee, lockOrderDepth, map[string]bool{}) {
					for _, h := range held {
						addEdge(h, c, ev)
					}
				}
			}
		}
	}

	// Strongly connected components of the class digraph; any SCC with
	// more than one class is a cycle (self-edges were dropped above).
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from] = true
		nodes[e.to] = true
	}
	for _, succ := range adj {
		sort.Strings(succ)
	}
	comp := sccComponents(nodes, adj)
	for _, scc := range comp {
		if len(scc) < 2 {
			continue
		}
		inSCC := map[string]bool{}
		for _, c := range scc {
			inSCC[c] = true
		}
		cycle := strings.Join(scc, " -> ") + " -> " + scc[0]
		// Report every edge inside the cycle at its first site, so each
		// conflicting acquisition is visible and suppressible.
		var cyc []edge
		for e := range edges {
			if inSCC[e.from] && inSCC[e.to] {
				cyc = append(cyc, e)
			}
		}
		sort.Slice(cyc, func(i, j int) bool {
			if cyc[i].from != cyc[j].from {
				return cyc[i].from < cyc[j].from
			}
			return cyc[i].to < cyc[j].to
		})
		for _, e := range cyc {
			s := edges[e]
			s.pass.Reportf(s.pos, "%s acquired while holding %s, but elsewhere the order is reversed (cycle: %s)", e.to, e.from, cycle)
		}
	}
	return nil
}

// sccComponents runs Tarjan's algorithm (iterating nodes in sorted
// order, so output is deterministic) and returns each component with its
// classes sorted.
func sccComponents(nodes map[string]bool, adj map[string][]string) [][]string {
	sorted := make([]string, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var comps [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, v := range sorted {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comps
}

// collectLockEvents walks one function body in source order, recording
// lock/unlock/call events. Deferred unlocks are dropped — they run at
// function exit, so the class stays held for edge purposes — and nested
// function literals are separate functions.
func collectLockEvents(pass *Pass, body *ast.BlockStmt) *lockFuncInfo {
	info := &lockFuncInfo{}
	deferred := map[*ast.CallExpr]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if _, op := lockClassOfCall(pass, d.Call); op == "Unlock" || op == "RUnlock" {
				deferred[d.Call] = true
			}
		}
		return true
	})
	directSet := map[string]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || deferred[call] {
			return true
		}
		if class, op := lockClassOfCall(pass, call); class != "" {
			switch op {
			case "Lock", "RLock":
				info.events = append(info.events, lockEvent{kind: evLock, class: class, pos: call.Pos(), pass: pass})
				directSet[class] = true
			case "Unlock", "RUnlock":
				info.events = append(info.events, lockEvent{kind: evUnlock, class: class, pos: call.Pos(), pass: pass})
			}
			return true
		}
		if fn, ok := calleeObject(pass, call).(*types.Func); ok {
			info.events = append(info.events, lockEvent{kind: evCall, callee: funcKeyOf(fn), pos: call.Pos(), pass: pass})
		}
		return true
	})
	for c := range directSet {
		info.direct = append(info.direct, c)
	}
	sort.Strings(info.direct)
	return info
}

// lockClassOfCall reports the lock class and operation of a
// sync.Mutex/RWMutex (R)Lock/(R)Unlock call, or ("", "").
func lockClassOfCall(pass *Pass, call *ast.CallExpr) (class, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	recv := namedType(sig.Recv().Type())
	if recv == nil {
		return "", ""
	}
	switch recv.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return "", ""
	}
	return lockClassExpr(pass, ast.Unparen(sel.X)), sel.Sel.Name
}

// lockClassExpr derives the type-level class of the mutex expression:
// "pkg.Type.field" for a field, "pkg.var" for a package-level mutex,
// "pkg.Type.<embedded>" for a lock reached through embedding, "" for
// locals and shapes the analyzer cannot classify.
func lockClassExpr(pass *Pass, recv ast.Expr) string {
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		v, ok := pass.ObjectOf(r.Sel).(*types.Var)
		if !ok {
			return ""
		}
		if v.IsField() {
			owner := namedType(pass.TypeOf(r.X))
			if owner == nil || owner.Obj().Pkg() == nil {
				return ""
			}
			return owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "." + v.Name()
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return ""
	case *ast.Ident:
		v, ok := pass.ObjectOf(r).(*types.Var)
		if !ok {
			return ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		// A local or receiver whose named type embeds the mutex: the
		// method resolves through embedding, so the class is the type.
		if t := namedType(v.Type()); t != nil && t.Obj().Pkg() != nil && t.Obj().Pkg().Path() != "sync" {
			return t.Obj().Pkg().Path() + "." + t.Obj().Name() + ".<embedded>"
		}
		return ""
	default:
		return ""
	}
}

// funcKeyOf names a function or method with a string stable across
// export-data package boundaries: "pkg.Recv.name" or "pkg.name".
func funcKeyOf(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedType(sig.Recv().Type()); named != nil {
			return pkg + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}
