// Package analysistest runs a suite analyzer over fixture packages and
// checks its findings against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest closely enough that
// fixtures port unchanged if that module ever becomes available.
//
// Fixtures live under testdata/src/<importpath>/ relative to the calling
// test. Each expected finding is declared on its line:
//
//	x := time.Now() // want `time\.Now`
//	a, b := f(), g() // want `first` `second`
//
// Expectations are backquoted or double-quoted regexps matched against
// the finding message; every expectation must be matched by exactly one
// finding on its line and vice versa. Suppressed findings
// (//spotverse:allow) are filtered before matching, so a fixture line
// carrying a directive and no want comment proves suppression works.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"spotverse/internal/analysis"
)

var (
	exportsOnce sync.Once
	exports     analysis.ExportTable
	exportsErr  error
)

// hostExports builds (once) the export-data table of the enclosing
// module plus the std packages fixtures may import.
func hostExports() (analysis.ExportTable, error) {
	exportsOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			exportsErr = err
			return
		}
		exports, exportsErr = analysis.Exports(root, "./...")
	})
	return exports, exportsErr
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above working directory")
		}
		dir = parent
	}
}

// Run loads each fixture package from testdata/src/<path>, applies the
// analyzer, and diffs findings against the fixtures' want comments. The
// fixture's import path is its directory path under testdata/src, so a
// fixture at testdata/src/spotverse/cmd/x tests analyzer allowlists
// keyed on real package paths.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	table, err := hostExports()
	if err != nil {
		t.Fatalf("building export table: %v", err)
	}
	for _, pkgPath := range pkgPaths {
		runOne(t, testdata, a, pkgPath, table)
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string, table analysis.ExportTable) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", pkgPath, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no fixture files in %s", pkgPath, dir)
	}
	pkg, err := analysis.TypeCheck(fset, pkgPath, files, table)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}

	wants := collectWants(t, fset, files)
	type lineKey struct {
		file string
		line int
	}
	got := map[lineKey][]analysis.Diagnostic{}
	for _, d := range diags {
		k := lineKey{d.Position.Filename, d.Position.Line}
		got[k] = append(got[k], d)
	}
	keys := make([]lineKey, 0, len(wants))
	for k := range wants {
		keys = append(keys, lineKey(k))
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		res := wants[wantKey(k)]
		remaining := got[k]
		for _, re := range res {
			idx := -1
			for i, d := range remaining {
				if re.MatchString(d.Message) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s:%d: no %s finding matching %q (got %s)", k.file, k.line, a.Name, re, messages(remaining))
				continue
			}
			remaining = append(remaining[:idx], remaining[idx+1:]...)
		}
		got[k] = remaining
	}
	for k, ds := range got {
		for _, d := range ds {
			t.Errorf("%s:%d: unexpected finding: %s: %s", k.file, k.line, d.Analyzer, d.Message)
		}
	}
}

type wantKey struct {
	file string
	line int
}

var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")
var wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// collectWants parses `// want` comments into per-line regexp lists.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]*regexp.Regexp {
	t.Helper()
	out := map[wantKey][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := wantKey{pos.Filename, pos.Line}
				for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
					pat := arg[1]
					if pat == "" {
						pat = arg[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out[k] = append(out[k], re)
				}
				if len(out[k]) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted patterns", pos.Filename, pos.Line)
				}
			}
		}
	}
	return out
}

func messages(ds []analysis.Diagnostic) string {
	if len(ds) == 0 {
		return "no findings"
	}
	var parts []string
	for _, d := range ds {
		parts = append(parts, fmt.Sprintf("%q", d.Message))
	}
	return strings.Join(parts, ", ")
}
