package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathPrefix marks a function whose warm path must not allocate. The
// directive takes no arguments and must sit in the doc comment of a
// function declaration:
//
//	//spotverse:hotpath
//	func (q eventQueue) less(i, j int) bool { ... }
const hotpathPrefix = "//spotverse:hotpath"

// HotPath enforces zero-allocation warm paths: a function annotated
// //spotverse:hotpath must not allocate, in its own body or in any
// module callee reachable within hotpathDepth static calls. Flagged
// shapes: function literals (closures), make/new, slice and map
// composite literals, &T{}, go statements, non-constant string
// concatenation, string<->[]byte conversions, fmt calls, and boxing a
// non-pointer concrete value into an interface argument.
//
// Two escape hatches keep the check about the *warm* path:
//
//   - Cold-branch pruning: a block (if body, case body) whose final
//     statement returns a non-nil error is an error path and is not
//     checked, and neither is any return statement carrying a non-nil
//     error. Error construction is allowed to allocate.
//   - Amortized allocations are allowed: append and map writes grow
//     warm structures to a steady state and then stop allocating. The
//     runtime AllocsPerRun gates (hotpath_alloc_test.go at the repo
//     root) catch any append that keeps growing.
//
// Calls through interfaces, function values, and non-module packages
// (except fmt) are trusted; calls into other annotated functions are
// trusted because those are checked on their own. Findings in callees
// surface once, at the call site inside the annotated function, which
// is also where a //spotverse:allow hotpath suppression belongs.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "functions annotated //spotverse:hotpath must not allocate on their warm " +
		"path, including module callees to a bounded depth",
	RunModule: runHotPath,
}

// hotpathDepth bounds callee traversal: the annotated body is depth 0
// and calls are followed while depth < hotpathDepth.
const hotpathDepth = 3

// hotFunc is one indexed function: its declaration, the pass that owns
// it, and whether it carries the hotpath annotation.
type hotFunc struct {
	decl *ast.FuncDecl
	pass *Pass
	hot  bool
}

func runHotPath(mp *ModulePass) error {
	index := map[string]*hotFunc{}
	var hotKeys []string
	for _, pkg := range mp.Pkgs {
		pass := mp.Pass(pkg)
		// Validate directive placement: every hotpath comment must be a
		// bare directive inside some function's doc comment.
		docComments := map[*ast.Comment]bool{}
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				hot := false
				if fd.Doc != nil {
					for _, c := range fd.Doc.List {
						if !strings.HasPrefix(c.Text, hotpathPrefix) {
							continue
						}
						docComments[c] = true
						rest := strings.TrimPrefix(c.Text, hotpathPrefix)
						if strings.TrimSpace(rest) != "" {
							pass.Reportf(c.Pos(), "spotverse:hotpath takes no arguments")
							continue
						}
						hot = true
					}
				}
				if fd.Body == nil {
					continue
				}
				fn, ok := pass.ObjectOf(fd.Name).(*types.Func)
				if !ok {
					continue
				}
				key := funcKeyOf(fn)
				index[key] = &hotFunc{decl: fd, pass: pass, hot: hot}
				if hot {
					hotKeys = append(hotKeys, key)
				}
			}
		}
		for _, f := range pass.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.HasPrefix(c.Text, hotpathPrefix) && !docComments[c] {
						pass.Reportf(c.Pos(), "spotverse:hotpath must be in the doc comment of a function declaration")
					}
				}
			}
		}
	}

	chk := &hotChecker{index: index, memo: map[hotMemoKey]*allocFinding{}}
	for _, key := range hotKeys {
		hf := index[key]
		chk.checkAnnotated(hf)
	}
	return nil
}

// allocFinding is the first allocation found inside a callee.
type allocFinding struct {
	what string
}

type hotMemoKey struct {
	key   string
	depth int
}

type hotChecker struct {
	index map[string]*hotFunc
	memo  map[hotMemoKey]*allocFinding
	// onPath cuts recursion: a cycle in the call graph is trusted past
	// the first visit.
	onPath map[string]bool
}

// checkAnnotated walks one annotated function, reporting every
// allocation on its warm path through its pass.
func (c *hotChecker) checkAnnotated(hf *hotFunc) {
	fn, ok := hf.pass.ObjectOf(hf.decl.Name).(*types.Func)
	if !ok {
		return
	}
	w := &hotWalk{
		chk:   c,
		pass:  hf.pass,
		sig:   fn.Type().(*types.Signature),
		depth: 0,
	}
	c.onPath = map[string]bool{funcKeyOf(fn): true}
	w.stmts(hf.decl.Body.List)
}

// callee checks the function behind key at the given depth and returns
// its first warm-path allocation, or nil if clean or trusted.
func (c *hotChecker) callee(key string, depth int) *allocFinding {
	if depth >= hotpathDepth {
		return nil
	}
	hf := c.index[key]
	if hf == nil || hf.hot || c.onPath[key] {
		return nil
	}
	mk := hotMemoKey{key: key, depth: depth}
	if f, ok := c.memo[mk]; ok {
		return f
	}
	fn, ok := hf.pass.ObjectOf(hf.decl.Name).(*types.Func)
	if !ok {
		return nil
	}
	w := &hotWalk{
		chk:     c,
		pass:    hf.pass,
		sig:     fn.Type().(*types.Signature),
		depth:   depth,
		capture: true,
		fnName:  fn.Name(),
	}
	c.onPath[key] = true
	w.stmts(hf.decl.Body.List)
	delete(c.onPath, key)
	c.memo[mk] = w.found
	return w.found
}

// hotWalk traverses one function body applying the allocation rules,
// pruning cold error branches. In capture mode (callee traversal) the
// first finding is recorded instead of reported and the walk stops.
type hotWalk struct {
	chk     *hotChecker
	pass    *Pass
	sig     *types.Signature
	depth   int
	capture bool
	fnName  string
	found   *allocFinding
}

// report handles a finding discovered directly in this body.
func (w *hotWalk) report(pos token.Pos, what string) {
	if !w.capture {
		w.pass.Reportf(pos, "%s", what)
		return
	}
	if w.found == nil {
		w.found = &allocFinding{what: what + " in " + w.fnName}
	}
}

// forward handles a finding bubbling up from a deeper callee: at the
// root it becomes a call-site report, in capture mode it passes through
// unchanged so the chain names the innermost allocation only.
func (w *hotWalk) forward(pos token.Pos, calleeName string, sub *allocFinding) {
	if !w.capture {
		w.pass.Reportf(pos, "call to %s allocates on the hot path: %s", calleeName, sub.what)
		return
	}
	if w.found == nil {
		w.found = sub
	}
}

func (w *hotWalk) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *hotWalk) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ReturnStmt:
		if w.coldReturn(s) {
			return
		}
		for _, r := range s.Results {
			w.expr(r)
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		if !w.coldBlock(s.Body.List) {
			w.stmts(s.Body.List)
		}
		if s.Else != nil {
			if blk, ok := s.Else.(*ast.BlockStmt); ok && w.coldBlock(blk.List) {
				return
			}
			w.stmt(s.Else)
		}
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.caseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.caseBodies(s.Body)
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			clause, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			w.stmt(clause.Comm)
			if !w.coldBlock(clause.Body) {
				w.stmts(clause.Body)
			}
		}
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.stmt(s.Post)
		w.stmts(s.Body.List)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.stmts(s.Body.List)
	case *ast.AssignStmt:
		for _, l := range s.Lhs {
			w.expr(l)
		}
		for _, r := range s.Rhs {
			w.expr(r)
		}
		if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 {
			if t := w.pass.TypeOf(s.Lhs[0]); t != nil && isStringType(t) {
				w.report(s.Pos(), "string concatenation allocates")
			}
		}
	case *ast.ExprStmt:
		// panic is a crash path, not a warm path.
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return
			}
		}
		w.expr(s.X)
	case *ast.DeferStmt:
		// Open-coded defers don't allocate; the deferred call itself
		// still runs on the warm path.
		w.call(s.Call, true)
	case *ast.GoStmt:
		w.report(s.Pos(), "go statement allocates a goroutine on the hot path")
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

func (w *hotWalk) caseBodies(body *ast.BlockStmt) {
	for _, cc := range body.List {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range clause.List {
			w.expr(e)
		}
		if !w.coldBlock(clause.Body) {
			w.stmts(clause.Body)
		}
	}
}

// coldBlock reports whether a statement list is an error path: its last
// statement returns a non-nil error.
func (w *hotWalk) coldBlock(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	ret, ok := list[len(list)-1].(*ast.ReturnStmt)
	return ok && w.coldReturn(ret)
}

// coldReturn reports whether ret carries a non-nil error result.
func (w *hotWalk) coldReturn(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false
	}
	res := w.sig.Results()
	if len(ret.Results) == res.Len() {
		for i := 0; i < res.Len(); i++ {
			if !isErrorType(res.At(i).Type()) {
				continue
			}
			if id, ok := ast.Unparen(ret.Results[i]).(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			return true
		}
		return false
	}
	// return f() forwarding a call's results: cold only if some result
	// expression's own type is error (a call returning (T, error) is
	// ambiguous — treat as warm and check the call).
	for _, r := range ret.Results {
		if t := w.pass.TypeOf(r); t != nil && isErrorType(t) {
			if id, ok := ast.Unparen(r).(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			return true
		}
	}
	return false
}

func (w *hotWalk) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.FuncLit:
		w.report(e.Pos(), "function literal allocates a closure")
	case *ast.CallExpr:
		w.call(e, false)
	case *ast.CompositeLit:
		t := w.pass.TypeOf(e)
		if t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				w.report(e.Pos(), "slice literal allocates")
				return
			case *types.Map:
				w.report(e.Pos(), "map literal allocates")
				return
			}
		}
		for _, elt := range e.Elts {
			w.expr(elt)
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				w.report(e.Pos(), "&composite literal allocates")
				return
			}
		}
		w.expr(e.X)
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			if t := w.pass.TypeOf(e); t != nil && isStringType(t) {
				if tv, ok := w.pass.TypesInfo.Types[e]; !ok || tv.Value == nil {
					w.report(e.Pos(), "string concatenation allocates")
				}
			}
		}
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.expr(e.X)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.KeyValueExpr:
		w.expr(e.Key)
		w.expr(e.Value)
	}
}

// call applies the allocation rules to one call: conversions, builtins,
// fmt, interface boxing, and bounded module-callee traversal.
func (w *hotWalk) call(call *ast.CallExpr, deferred bool) {
	// Type conversions.
	if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		w.conversion(call)
		for _, a := range call.Args {
			w.expr(a)
		}
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.pass.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				w.report(call.Pos(), "make allocates")
				return
			case "new":
				w.report(call.Pos(), "new allocates")
				return
			case "panic":
				return // crash path
			case "append":
				// Amortized-zero on warm structures; the runtime
				// AllocsPerRun gate catches unbounded growth.
			}
			for _, a := range call.Args {
				w.expr(a)
			}
			return
		}
	}
	// fmt never belongs on a hot path.
	if name, ok := pkgCall(w.pass, call, "fmt"); ok {
		w.report(call.Pos(), "fmt."+name+" allocates")
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		w.expr(sel.X)
	}
	fn, _ := calleeObject(w.pass, call).(*types.Func)
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok {
			w.boxedArgs(call, sig)
		}
		if !deferred {
			key := funcKeyOf(fn)
			if sub := w.chk.callee(key, w.depth+1); sub != nil {
				w.forward(call.Pos(), fn.Name(), sub)
			}
		}
	}
	for _, a := range call.Args {
		w.expr(a)
	}
}

// conversion flags the converting call shapes that copy memory:
// string<->[]byte/[]rune and non-constant conversions to string.
func (w *hotWalk) conversion(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	dst := w.pass.TypeOf(call)
	src := w.pass.TypeOf(call.Args[0])
	if dst == nil || src == nil {
		return
	}
	if tv, ok := w.pass.TypesInfo.Types[call]; ok && tv.Value != nil {
		return // constant-folded
	}
	dstU, srcU := dst.Underlying(), src.Underlying()
	if isByteOrRuneSlice(dstU) && isStringType(srcU) {
		w.report(call.Pos(), "string to byte/rune slice conversion allocates")
		return
	}
	if isStringType(dstU) && !isStringType(srcU) {
		if b, ok := srcU.(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
			return
		}
		w.report(call.Pos(), "conversion to string allocates")
	}
}

// boxedArgs flags non-pointer concrete values passed where the callee
// takes an interface: the value is boxed, which allocates.
func (w *hotWalk) boxedArgs(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 && params.Len() > 0 {
			if !call.Ellipsis.IsValid() {
				if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
					pt = sl.Elem()
				}
			}
			// A spread `xs...` passes the slice through; no boxing.
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		at := w.pass.TypeOf(arg)
		if at == nil || boxFree(at) {
			continue
		}
		if tv, ok := w.pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
			continue // constants may still box, but tiny ones are interned
		}
		w.report(arg.Pos(), "passing "+at.String()+" to an interface parameter boxes the value")
	}
}

// boxFree reports whether values of t convert to an interface without
// allocating: pointer-shaped types store directly in the iface word.
func boxFree(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}
