package analysis

import (
	"go/ast"
	"go/types"
)

// SeedFlow checks, at every call site in the experiment, market, and
// cloud packages, that arguments of type *simclock.RNG or *rand.Rand
// flow from the simclock seed hierarchy. A constructor handed an RNG
// conjured any other way (a fresh rand.New, a package-level generator)
// silently forks the experiment off the master seed: runs still look
// deterministic in isolation but stop being reproducible from the
// recorded seed.
//
// Derivation is traced structurally: direct simclock calls
// (simclock.Stream, simclock.NewRNG, methods on simclock types),
// rand.New over a derived source, local variables assigned from derived
// expressions, and same-package helper functions whose returns are
// derived. Function parameters, struct fields, and calls into other
// module packages are trusted — their own call or assignment sites are
// the places to check, and the in-scope ones are.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc: "RNG arguments in experiment/market/cloud must derive from the simclock seed hierarchy " +
		"(simclock.Stream / simclock.NewRNG), not from ad-hoc rand constructors",
	Run: runSeedFlow,
}

// seedflowScope roots the package subtrees whose call sites are checked.
var seedflowScope = []string{
	modulePath + "/internal/experiment",
	modulePath + "/internal/market",
	modulePath + "/internal/cloud",
}

const seedflowTraceDepth = 4

func runSeedFlow(pass *Pass) error {
	inScope := false
	for _, prefix := range seedflowScope {
		if hasPathPrefix(pass.Pkg.Path(), prefix) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if !isRNGType(pass.TypeOf(arg)) {
					continue
				}
				if !derivedFromSimclock(pass, arg, seedflowTraceDepth) {
					pass.Reportf(arg.Pos(), "RNG argument does not derive from the simclock seed hierarchy; use simclock.Stream")
				}
			}
			return true
		})
	}
	return nil
}

// isRNGType reports whether t is *simclock.RNG or *math/rand.Rand.
func isRNGType(t types.Type) bool {
	if t == nil {
		return false
	}
	return isNamed(t, simclockPath, "RNG") || isNamed(t, mathRandPath, "Rand")
}

// derivedFromSimclock traces expr back toward a simclock constructor.
func derivedFromSimclock(pass *Pass, expr ast.Expr, depth int) bool {
	if depth <= 0 {
		return false
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
		obj := pass.ObjectOf(e)
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		if v.IsField() {
			return true // field reads are trusted; check where the field is set
		}
		if isParam(pass, v) {
			return true // parameters are trusted; their call sites are checked
		}
		return assignmentsDerived(pass, v, depth-1)
	case *ast.SelectorExpr:
		// Field selector (inst.rng, cfg.RNG): trusted, as above.
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return true
		}
		if v, ok := pass.ObjectOf(e.Sel).(*types.Var); ok && v.IsField() {
			return true
		}
		return false
	case *ast.CallExpr:
		if obj := calleeObject(pass, e); obj != nil && obj.Pkg() != nil {
			path := obj.Pkg().Path()
			if path == simclockPath {
				return true
			}
			if name, ok := pkgCall(pass, e, mathRandPath); ok && name == "New" && len(e.Args) == 1 {
				return derivedFromSimclock(pass, e.Args[0], depth-1)
			}
			if path == pass.Pkg.Path() {
				return returnsDerived(pass, obj, depth-1)
			}
			if inModule(path) {
				return true // other module packages are linted on their own
			}
		}
		return false
	case *ast.IndexExpr:
		// Indexing a registry of streams: trust the registry.
		return true
	default:
		return false
	}
}

// isParam reports whether v is a parameter (or receiver) of some
// function signature.
func isParam(pass *Pass, v *types.Var) bool {
	for _, f := range pass.Files {
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			var ft *ast.FuncType
			var recv *ast.FieldList
			switch d := n.(type) {
			case *ast.FuncDecl:
				ft, recv = d.Type, d.Recv
			case *ast.FuncLit:
				ft = d.Type
			default:
				return true
			}
			for _, fl := range []*ast.FieldList{ft.Params, recv} {
				if fl == nil {
					continue
				}
				for _, field := range fl.List {
					for _, name := range field.Names {
						if pass.ObjectOf(name) == v {
							found = true
						}
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// assignmentsDerived reports whether every assignment to v in the
// package derives from simclock. A variable with no visible assignment
// (package-level, or assigned only via pointer) is not derived.
func assignmentsDerived(pass *Pass, v *types.Var, depth int) bool {
	sawAssign := false
	derived := true
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range stmt.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || pass.ObjectOf(id) != v {
						continue
					}
					sawAssign = true
					if i < len(stmt.Rhs) && len(stmt.Lhs) == len(stmt.Rhs) {
						if !derivedFromSimclock(pass, stmt.Rhs[i], depth) {
							derived = false
						}
					} else {
						derived = false // multi-value unpacking: opaque
					}
				}
			case *ast.ValueSpec:
				for i, name := range stmt.Names {
					if pass.ObjectOf(name) != v {
						continue
					}
					sawAssign = true
					if i < len(stmt.Values) {
						if !derivedFromSimclock(pass, stmt.Values[i], depth) {
							derived = false
						}
					} else if len(stmt.Values) > 0 {
						derived = false
					}
					// A bare `var g *simclock.RNG` declaration is nil
					// until assigned; the assignments decide.
				}
			}
			return true
		})
	}
	return sawAssign && derived
}

// returnsDerived reports whether every return of RNG type from the
// same-package function obj derives from simclock.
func returnsDerived(pass *Pass, obj types.Object, depth int) bool {
	if depth <= 0 {
		return false
	}
	var decl *ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && pass.ObjectOf(fd.Name) == obj {
				decl = fd
			}
		}
	}
	if decl == nil || decl.Body == nil {
		return false
	}
	derived := true
	sawReturn := false
	inspectShallow(decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if !isRNGType(pass.TypeOf(res)) {
				continue
			}
			sawReturn = true
			if !derivedFromSimclock(pass, res, depth) {
				derived = false
			}
		}
		return true
	})
	return sawReturn && derived
}
