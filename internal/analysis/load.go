package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed, and type-checked package ready for
// analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// stdExtras are standard-library packages the fixture harness
// (analysistest) may import even though the module proper might not.
// Listing them here keeps one export-data table serving both the
// multichecker and the fixture tests.
var stdExtras = []string{
	"fmt", "io", "os", "sort", "strings", "strconv", "time", "math/rand", "sync",
	"sync/atomic", "bytes", "context", "errors",
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// ExportTable maps import paths to compiled export-data files, the raw
// material go/importer needs to type-check against pre-built
// dependencies without golang.org/x/tools.
type ExportTable map[string]string

// Lookup adapts the table to the shape importer.ForCompiler expects.
func (t ExportTable) Lookup(path string) (io.ReadCloser, error) {
	f, ok := t[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no export data for %q", path)
	}
	return os.Open(f)
}

// Importer returns a fresh export-data importer over the table. Each
// type-check should get its own importer so packages are re-resolved
// against one consistent FileSet.
func (t ExportTable) Importer() types.Importer {
	return importer.ForCompiler(token.NewFileSet(), "gc", t.Lookup)
}

// goList runs `go list -export -deps` in dir over the patterns plus the
// std extras, returning every entry. Compilation happens through the
// ordinary build cache, so this works fully offline.
func goList(dir string, patterns []string) ([]listEntry, error) {
	args := []string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Error"}
	args = append(args, patterns...)
	args = append(args, stdExtras...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Exports builds the export-data table for the module rooted at (or
// containing) dir, covering the given patterns, their transitive deps,
// and the std extras.
func Exports(dir string, patterns ...string) (ExportTable, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	table := ExportTable{}
	for _, e := range entries {
		if e.Export != "" {
			table[e.ImportPath] = e.Export
		}
	}
	return table, nil
}

// Load lists, parses, and type-checks the packages matching patterns,
// rooted at dir. Only non-standard-library packages named by the
// patterns themselves become analysis targets; dependencies contribute
// export data only. Test files are not loaded — the invariants this
// suite enforces are about simulation code, and tests legitimately
// measure wall-clock time.
func Load(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	table := ExportTable{}
	var targets []listEntry
	for _, e := range entries {
		if e.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", e.ImportPath, e.Error.Err)
		}
		if e.Export != "" {
			table[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		pkg, err := TypeCheck(fset, t.ImportPath, files, table)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// TypeCheck type-checks already-parsed files as the package at pkgPath,
// resolving imports through the export table. It is shared by Load and
// by the analysistest fixture harness.
func TypeCheck(fset *token.FileSet, pkgPath string, files []*ast.File, table ExportTable) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: table.Importer()}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
