package cloud

import (
	"testing"
	"time"

	"spotverse/internal/catalog"
)

// fleetScenario files a batch of spot requests, lets interruptions and
// sweeps play out, and returns the observable trace the fleet and
// default modes must agree on.
func fleetScenario(t *testing.T, enableFleet bool) (launches []InstanceID, cost float64, swept []int) {
	t.Helper()
	eng, p := newProvider(9)
	if enableFleet {
		p.EnableFleetMode()
	}
	p.OnLaunch(func(inst *Instance) { launches = append(launches, inst.ID) })
	for i := 0; i < 30; i++ {
		region := catalog.Region("eu-north-1")
		if i%3 == 0 {
			region = "us-east-1"
		}
		if _, err := p.RequestSpot(catalog.M5XLarge, region, "w"); err != nil {
			t.Fatal(err)
		}
	}
	for tick := 0; tick < 16; tick++ {
		if err := eng.RunFor(15 * time.Minute); err != nil {
			t.Fatal(err)
		}
		swept = append(swept, p.EvaluateOpenRequests())
	}
	if err := eng.RunFor(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	for _, inst := range p.RunningInstances() {
		if err := p.Terminate(inst.ID); err != nil {
			t.Fatal(err)
		}
	}
	return launches, p.TotalInstanceCost(), swept
}

// TestFleetModeBitIdentical pins the core fleet-mode contract: the
// open-request index, agenda-batched fulfills, and released records
// must not change a single observable — launch order, sweep counts, or
// the ID-ordered cost sum.
func TestFleetModeBitIdentical(t *testing.T) {
	slowLaunches, slowCost, slowSwept := fleetScenario(t, false)
	fleetLaunches, fleetCost, fleetSwept := fleetScenario(t, true)

	if len(slowLaunches) == 0 {
		t.Fatal("scenario launched nothing; not exercising the fleet path")
	}
	if len(fleetLaunches) != len(slowLaunches) {
		t.Fatalf("fleet launched %d instances, default %d", len(fleetLaunches), len(slowLaunches))
	}
	for i := range slowLaunches {
		if fleetLaunches[i] != slowLaunches[i] {
			t.Fatalf("launch[%d] = %s (fleet) vs %s (default)", i, fleetLaunches[i], slowLaunches[i])
		}
	}
	if fleetCost != slowCost {
		t.Fatalf("TotalInstanceCost = %v (fleet) vs %v (default); must be bit-identical", fleetCost, slowCost)
	}
	for i := range slowSwept {
		if fleetSwept[i] != slowSwept[i] {
			t.Fatalf("sweep[%d] evaluated %d (fleet) vs %d (default)", i, fleetSwept[i], slowSwept[i])
		}
	}
}

// TestFleetModeReleasesSettledRecords verifies the retention bound:
// once requests settle and instances terminate, fleet mode keeps maps
// sized to live work only.
func TestFleetModeReleasesSettledRecords(t *testing.T) {
	eng, p := newProvider(3)
	p.EnableFleetMode()
	if !p.FleetMode() {
		t.Fatal("FleetMode not reported")
	}
	reqs := make([]RequestID, 0, 20)
	for i := 0; i < 20; i++ {
		req, err := p.RequestSpot(catalog.M5XLarge, "eu-north-1", "w")
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, req.ID)
	}
	for tick := 0; tick < 8; tick++ {
		if err := eng.RunFor(15 * time.Minute); err != nil {
			t.Fatal(err)
		}
		p.EvaluateOpenRequests()
	}
	// Cancel whatever is still open; every request is now settled.
	for _, id := range reqs {
		if err := p.CancelRequest(id); err != nil {
			t.Fatalf("fleet CancelRequest(%s) = %v, want nil", id, err)
		}
	}
	if n := len(p.requests); n != 0 {
		t.Fatalf("%d settled requests retained, want 0", n)
	}
	running := p.RunningInstances()
	if len(running) == 0 {
		t.Fatal("scenario fulfilled nothing; not exercising release")
	}
	for _, inst := range running {
		if err := p.Terminate(inst.ID); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(p.instances); n != 0 {
		t.Fatalf("%d terminated instances retained, want 0", n)
	}
	if len(p.retired) == 0 {
		t.Fatal("no retired cost entries recorded")
	}
	if cost := p.TotalInstanceCost(); cost <= 0 {
		t.Fatalf("TotalInstanceCost = %v after release, want > 0", cost)
	}
}
