package cloud

import (
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/raceflag"
)

// TestFleetSweepAllocFree is the runtime half of the //spotverse:hotpath
// gate on evaluateOpenIndexed: a retry sweep over open requests that all
// fail their launch roll (the steady state during an outage) must not
// allocate — the open index compacts in place and evaluate returns
// before building its fulfill closure.
func TestFleetSweepAllocFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; zero-alloc gates are meaningless under -race")
	}
	eng, p := newProvider(7)
	p.EnableFleetMode()
	region := catalog.Region("eu-north-1")
	// Launches in the region fail for a week: every request stays open
	// and every sweep iteration takes the failed-roll early return.
	if err := p.mkt.InjectOutage(region, eng.Now(), eng.Now().Add(7*24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := p.RequestSpot(catalog.M5XLarge, region, "w"); err != nil {
			t.Fatal(err)
		}
	}
	p.evaluateOpenIndexed() // warm market walks for the evaluation instant
	allocs := testing.AllocsPerRun(100, func() {
		if n := p.evaluateOpenIndexed(); n != 50 {
			t.Fatalf("sweep evaluated %d requests, want 50", n)
		}
	})
	if allocs != 0 {
		t.Fatalf("fleet retry sweep allocated %v per run, want 0", allocs)
	}
}

// TestAppendSeqIDZeroAlloc pins the ID-formatting hot path: appending
// into the provider's reused scratch buffer must not touch the heap.
// One ID is minted per request (unsharded paths) plus one per launch,
// so a single stray allocation here is a whole-run regression.
func TestAppendSeqIDZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; zero-alloc gates are meaningless under -race")
	}
	buf := make([]byte, 0, 32)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = appendSeqID(buf[:0], "sir", 12345678)
	})
	if allocs != 0 {
		t.Errorf("appendSeqID allocates %.1f per call, want 0", allocs)
	}
	if got := string(appendSeqID(nil, "i", 7)); got != "i-000007" {
		t.Errorf("appendSeqID zero-padding: got %q, want %q", got, "i-000007")
	}
	if got := string(appendSeqID(nil, "sir", 12345678)); got != "sir-12345678" {
		t.Errorf("appendSeqID wide seq: got %q, want %q", got, "sir-12345678")
	}
}
