package cloud

import (
	"errors"
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/market"
	"spotverse/internal/simclock"
)

func newProvider(seed int64) (*simclock.Engine, *Provider) {
	eng := simclock.NewEngine()
	mkt := market.New(catalog.Default(), seed, simclock.Epoch)
	return eng, New(eng, mkt, seed)
}

func TestOnDemandLaunchAndBilling(t *testing.T) {
	eng, p := newProvider(1)
	inst, err := p.RunOnDemand(catalog.M5XLarge, "us-east-1", "w1")
	if err != nil {
		t.Fatal(err)
	}
	if inst.State != StateRunning || inst.Lifecycle != LifecycleOnDemand {
		t.Fatalf("bad instance state: %+v", inst)
	}
	if err := eng.RunFor(10 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if inst.State != StateRunning {
		t.Fatal("on-demand instance must never be interrupted")
	}
	if err := p.Terminate(inst.ID); err != nil {
		t.Fatal(err)
	}
	od, _ := p.Market().Catalog().OnDemandPrice(catalog.M5XLarge, "us-east-1")
	want := od * 10
	if diff := inst.CostUSD - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("cost = %v, want %v", inst.CostUSD, want)
	}
}

func TestOnDemandUnknownRegion(t *testing.T) {
	_, p := newProvider(1)
	if _, err := p.RunOnDemand(catalog.M5XLarge, "atlantis-1", "w"); err == nil {
		t.Fatal("unknown region should error")
	}
}

func TestP3RejectedWhereUnoffered(t *testing.T) {
	_, p := newProvider(1)
	if _, err := p.RequestSpot(catalog.P32XLarge, "ca-central-1", "w"); err == nil {
		t.Fatal("p3 in non-offering region should error")
	}
}

func TestSpotRequestFulfillment(t *testing.T) {
	eng, p := newProvider(2)
	// eu-north-1 is stable: high placement score, launches should succeed
	// quickly for most seeds; retry sweeps cover the rest.
	req, err := p.RequestSpot(catalog.M5XLarge, "eu-north-1", "w1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10 && req.State == RequestOpen; i++ {
		if err := eng.RunFor(15 * time.Minute); err != nil {
			t.Fatal(err)
		}
		p.EvaluateOpenRequests()
	}
	if err := eng.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if req.State != RequestActive {
		t.Fatalf("request state = %v after retries, want active", req.State)
	}
	inst, err := p.Instance(req.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Lifecycle != LifecycleSpot || inst.Region != "eu-north-1" {
		t.Fatalf("bad fulfilled instance: %+v", inst)
	}
	if inst.Tag != "w1" {
		t.Fatalf("tag not propagated: %q", inst.Tag)
	}
}

func TestSpotInterruptionDeliversNoticeThenReclaims(t *testing.T) {
	eng, p := newProvider(3)
	var (
		notices  []InstanceID
		reclaims []InstanceID
	)
	p.OnInterruptionNotice(func(inst *Instance) { notices = append(notices, inst.ID) })
	p.OnTerminate(func(inst *Instance, interrupted bool) {
		if interrupted {
			reclaims = append(reclaims, inst.ID)
		}
	})
	// Launch many spot instances in the riskiest market so several get
	// reclaimed inside the horizon.
	for i := 0; i < 30; i++ {
		if _, err := p.RequestSpot(catalog.M5XLarge, "ca-central-1", "w"); err != nil {
			t.Fatal(err)
		}
	}
	sweep := eng.Every(15*time.Minute, "sweep", func(time.Time) { p.EvaluateOpenRequests() })
	defer sweep.Stop()
	if err := eng.Run(simclock.Epoch.Add(48 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if len(reclaims) == 0 {
		t.Fatal("no interruptions in 48h in the riskiest region; hazard wiring broken")
	}
	if len(notices) < len(reclaims) {
		t.Fatalf("notices %d < reclaims %d; every reclaim must be preceded by a notice", len(notices), len(reclaims))
	}
}

func TestNoticePrecedesReclaimByWindow(t *testing.T) {
	eng, p := newProvider(4)
	noticeAt := map[InstanceID]time.Time{}
	var violations int
	p.OnInterruptionNotice(func(inst *Instance) { noticeAt[inst.ID] = eng.Now() })
	p.OnTerminate(func(inst *Instance, interrupted bool) {
		if !interrupted {
			return
		}
		nt, ok := noticeAt[inst.ID]
		if !ok {
			violations++
			return
		}
		gap := eng.Now().Sub(nt)
		if gap > NoticeWindow {
			violations++
		}
	})
	for i := 0; i < 40; i++ {
		_, _ = p.RequestSpot(catalog.M5XLarge, "us-east-1", "w")
	}
	sweep := eng.Every(15*time.Minute, "sweep", func(time.Time) { p.EvaluateOpenRequests() })
	defer sweep.Stop()
	if err := eng.Run(simclock.Epoch.Add(72 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if violations > 0 {
		t.Fatalf("%d reclaims without a timely notice", violations)
	}
}

func TestTerminateCancelsPendingInterruption(t *testing.T) {
	eng, p := newProvider(5)
	interrupted := 0
	p.OnTerminate(func(_ *Instance, i bool) {
		if i {
			interrupted++
		}
	})
	req, err := p.RequestSpot(catalog.M5XLarge, "eu-north-1", "w")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20 && req.State == RequestOpen; i++ {
		_ = eng.RunFor(15 * time.Minute)
		p.EvaluateOpenRequests()
	}
	_ = eng.RunFor(time.Minute)
	if req.State != RequestActive {
		t.Skip("placement unlucky for this seed")
	}
	if err := p.Terminate(req.Instance); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(simclock.Epoch.Add(30 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if interrupted != 0 {
		t.Fatal("terminated instance later fired an interruption")
	}
}

func TestTerminateErrors(t *testing.T) {
	_, p := newProvider(6)
	if err := p.Terminate("i-404"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	inst, err := p.RunOnDemand(catalog.M5Large, "us-east-1", "w")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Terminate(inst.ID); err != nil {
		t.Fatal(err)
	}
	if err := p.Terminate(inst.ID); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("double terminate err = %v, want ErrNotRunning", err)
	}
}

func TestCancelOpenRequest(t *testing.T) {
	eng, p := newProvider(7)
	var open *SpotRequest
	// Find a seed-dependent open request by filing many in a weak market.
	for i := 0; i < 50; i++ {
		req, err := p.RequestSpot(catalog.M5XLarge, "sa-east-1", "w")
		if err != nil {
			t.Fatal(err)
		}
		if req.State == RequestOpen {
			open = req
			break
		}
	}
	if open == nil {
		t.Skip("every request placed immediately for this seed")
	}
	if err := p.CancelRequest(open.ID); err != nil {
		t.Fatal(err)
	}
	if open.State != RequestCancelled {
		t.Fatalf("state = %v, want cancelled", open.State)
	}
	p.EvaluateOpenRequests()
	if err := eng.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	if open.State != RequestCancelled || open.Instance != "" {
		t.Fatal("cancelled request was fulfilled")
	}
}

func TestSpotCostCheaperThanOnDemand(t *testing.T) {
	eng, p := newProvider(8)
	req, err := p.RequestSpot(catalog.M5XLarge, "eu-north-1", "w")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20 && req.State == RequestOpen; i++ {
		_ = eng.RunFor(15 * time.Minute)
		p.EvaluateOpenRequests()
	}
	_ = eng.RunFor(time.Minute)
	if req.State != RequestActive {
		t.Skip("placement unlucky for this seed")
	}
	inst, _ := p.Instance(req.Instance)
	start := eng.Now()
	_ = eng.RunFor(5 * time.Hour)
	if inst.State != StateRunning {
		t.Skip("interrupted before measurement for this seed")
	}
	got, err := p.AccruedCost(inst.ID)
	if err != nil {
		t.Fatal(err)
	}
	od, _ := p.Market().Catalog().OnDemandPrice(catalog.M5XLarge, "eu-north-1")
	elapsed := eng.Now().Sub(start).Hours()
	if got <= 0 || got >= od*elapsed {
		t.Fatalf("spot cost %v not in (0, on-demand %v)", got, od*elapsed)
	}
}

func TestRunningAndAllInstancesOrdering(t *testing.T) {
	_, p := newProvider(9)
	for i := 0; i < 5; i++ {
		if _, err := p.RunOnDemand(catalog.M5Large, "us-east-1", "w"); err != nil {
			t.Fatal(err)
		}
	}
	running := p.RunningInstances()
	if len(running) != 5 {
		t.Fatalf("running = %d, want 5", len(running))
	}
	for i := 1; i < len(running); i++ {
		if running[i].ID <= running[i-1].ID {
			t.Fatal("instances not ordered by ID")
		}
	}
	if err := p.Terminate(running[0].ID); err != nil {
		t.Fatal(err)
	}
	if len(p.RunningInstances()) != 4 || len(p.AllInstances()) != 5 {
		t.Fatal("running/all counts wrong after terminate")
	}
}

func TestTotalInstanceCostAggregates(t *testing.T) {
	eng, p := newProvider(10)
	a, _ := p.RunOnDemand(catalog.M5Large, "us-east-1", "w")
	_, _ = p.RunOnDemand(catalog.M5Large, "us-east-1", "w")
	_ = eng.RunFor(2 * time.Hour)
	_ = p.Terminate(a.ID)
	_ = eng.RunFor(1 * time.Hour)
	od, _ := p.Market().Catalog().OnDemandPrice(catalog.M5Large, "us-east-1")
	want := od*2 + od*3
	got := p.TotalInstanceCost()
	if diff := got - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("total cost = %v, want %v", got, want)
	}
}

func TestInterruptionRateMatchesHazard(t *testing.T) {
	// Property: over many instances, the empirical survival past 10h in
	// ca-central-1 should roughly match exp(-10*hazard).
	eng, p := newProvider(11)
	hazard, err := p.Market().HazardPerHour(catalog.M5XLarge, "ca-central-1", simclock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	for i := 0; i < n; i++ {
		_, _ = p.RequestSpot(catalog.M5XLarge, "ca-central-1", "w")
	}
	sweep := eng.Every(15*time.Minute, "sweep", func(time.Time) { p.EvaluateOpenRequests() })
	defer sweep.Stop()
	_ = eng.Run(simclock.Epoch.Add(10*time.Hour + time.Minute))
	launched, surviving := 0, 0
	for _, inst := range p.AllInstances() {
		launched++
		if inst.State == StateRunning {
			surviving++
		}
	}
	if launched < n*9/10 {
		t.Fatalf("only %d/%d launched", launched, n)
	}
	frac := float64(surviving) / float64(launched)
	// Launches trickle in over sweeps, so exposure is slightly under 10h;
	// allow a generous band around exp(-10λ).
	wantLo := 0.6 * expApprox(-10*hazard)
	wantHi := 1.7*expApprox(-10*hazard) + 0.05
	if frac < wantLo || frac > wantHi {
		t.Fatalf("survival %v outside [%v, %v] for hazard %v", frac, wantLo, wantHi, hazard)
	}
}

func expApprox(x float64) float64 {
	// Small helper to avoid importing math for one call in tests.
	sum, term := 1.0, 1.0
	for i := 1; i < 30; i++ {
		term *= x / float64(i)
		sum += term
	}
	return sum
}
