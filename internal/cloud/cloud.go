// Package cloud simulates an EC2-like IaaS provider on the simulation
// clock: on-demand instances, spot requests with an open/active/failed
// lifecycle, spot interruptions with two-minute notices, and per-second
// billing against the market's price processes.
//
// The provider is intentionally shaped like the narrow slice of the EC2
// API the SpotVerse controller uses: RunOnDemand, RequestSpot,
// EvaluateOpenRequests (the 15-minute retry sweep), Terminate, and
// interruption-notice subscription (EventBridge's role).
package cloud

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/market"
	"spotverse/internal/simclock"
)

// NoticeWindow is the warning AWS gives before reclaiming a spot instance.
const NoticeWindow = 2 * time.Minute

// Lifecycle distinguishes how an instance is paid for.
type Lifecycle int

// Lifecycle values.
const (
	LifecycleSpot Lifecycle = iota + 1
	LifecycleOnDemand
)

// String implements fmt.Stringer.
func (l Lifecycle) String() string {
	switch l {
	case LifecycleSpot:
		return "spot"
	case LifecycleOnDemand:
		return "on-demand"
	default:
		return "unknown"
	}
}

// InstanceState tracks an instance through its life.
type InstanceState int

// Instance states.
const (
	StateRunning InstanceState = iota + 1
	StateTerminated
)

// RequestState tracks a spot request.
type RequestState int

// Spot request states, mirroring EC2's request-status vocabulary.
const (
	RequestOpen RequestState = iota + 1
	RequestActive
	RequestCancelled
)

// InterruptReason distinguishes why the provider reclaimed an instance
// (Section 2.1.2 of the paper: capacity needs, or the spot price rising
// above the user's bid).
type InterruptReason int

// Interruption reasons.
const (
	ReasonNone InterruptReason = iota
	ReasonCapacity
	ReasonPrice
)

// String implements fmt.Stringer.
func (r InterruptReason) String() string {
	switch r {
	case ReasonCapacity:
		return "capacity"
	case ReasonPrice:
		return "price"
	default:
		return "none"
	}
}

// InstanceID identifies an instance.
type InstanceID string

// RequestID identifies a spot request.
type RequestID string

// Instance is a running or terminated virtual machine.
type Instance struct {
	ID        InstanceID
	Type      catalog.InstanceType
	Region    catalog.Region
	AZ        catalog.AZ
	Lifecycle Lifecycle
	State     InstanceState
	// LaunchedAt and TerminatedAt bound the billed lifetime.
	LaunchedAt   time.Time
	TerminatedAt time.Time
	// Interrupted reports whether termination was provider-initiated;
	// Reason says why (capacity reclaim or price above bid).
	Interrupted bool
	Reason      InterruptReason
	// BidUSD is the spot request's max price (on-demand by default, the
	// paper's bidding policy).
	BidUSD float64
	// CostUSD is the accrued instance cost, final once terminated.
	CostUSD float64
	// Tag is an opaque caller label (the workload the instance serves).
	Tag string

	// seq is the provider-wide allocation counter behind the ID; fleet
	// mode uses it to keep cost summation in ID order after the record
	// itself is released.
	seq int

	noticeEv      *simclock.Event
	termEv        *simclock.Event
	priceNoticeEv *simclock.Event
	priceTermEv   *simclock.Event
}

// SpotRequest is a pending or fulfilled request for spot capacity.
type SpotRequest struct {
	ID       RequestID
	Type     catalog.InstanceType
	Region   catalog.Region
	State    RequestState
	Created  time.Time
	Attempts int
	// Instance is set once the request becomes active.
	Instance InstanceID
	// Tag is propagated to the launched instance.
	Tag string
	// MaxPriceUSD is the bid; zero means "bid the on-demand price"
	// (Section 5.1.2: research shows spot pricing is not a significant
	// factor, so the paper bids on-demand and pays the actual spot
	// price).
	MaxPriceUSD float64
}

// Errors returned by the provider.
var (
	ErrNotFound   = errors.New("cloud: not found")
	ErrNotRunning = errors.New("cloud: instance not running")
)

// NoticeFunc receives interruption notices NoticeWindow before reclaim.
type NoticeFunc func(inst *Instance)

// LaunchFunc receives instances as they enter StateRunning.
type LaunchFunc func(inst *Instance)

// TerminateFunc receives instances as they terminate, with the reason.
type TerminateFunc func(inst *Instance, interrupted bool)

// Provider is the simulated IaaS control plane. It is single-threaded and
// must only be driven from inside the simulation engine's event loop.
type Provider struct {
	eng *simclock.Engine
	mkt *market.Model
	rng *simclock.RNG

	instances map[InstanceID]*Instance
	requests  map[RequestID]*SpotRequest
	seq       int

	// Fleet mode (EnableFleetMode): bounded-retention bookkeeping for
	// 10k-100k workload runs. Nil/false on the default path, which stays
	// byte-identical.
	fleet      bool
	fulfillAt  map[int64][]*SpotRequest
	fulfillCb  func()
	bucketPool [][]*SpotRequest
	batchFired uint64
	open       []*SpotRequest
	retired    []retiredCost
	crossCache map[crossKey]crossState

	// tagRand, when set (sharded fleet runs), resolves a workload tag to
	// that workload's private random stream; nil falls back to the
	// provider-wide sequential stream. eventHorizonNs, when non-zero,
	// lets the provider skip scheduling events that could never fire
	// because the caller stops the run exactly at that instant.
	tagRand        func(tag string) *simclock.SplitMix64
	eventHorizonNs int64

	// idBuf is the reused scratch for instance/request ID formatting.
	idBuf []byte

	noticeSubs []NoticeFunc
	launchSubs []LaunchFunc
	termSubs   []TerminateFunc

	// fulfillDelay is how long a successful spot placement takes.
	fulfillDelay time.Duration

	// launchGate, when set, can veto launches per (type, region) — e.g.
	// an AMI registry rejecting regions without the machine image.
	launchGate func(catalog.InstanceType, catalog.Region) error
}

// New returns a provider over the market, drawing randomness from the
// given seed ("cloud" stream).
func New(eng *simclock.Engine, mkt *market.Model, seed int64) *Provider {
	return &Provider{
		eng:          eng,
		mkt:          mkt,
		rng:          simclock.Stream(seed, "cloud"),
		instances:    make(map[InstanceID]*Instance),
		requests:     make(map[RequestID]*SpotRequest),
		fulfillDelay: 45 * time.Second,
	}
}

// Engine exposes the simulation engine driving this provider.
func (p *Provider) Engine() *simclock.Engine { return p.eng }

// Market exposes the market model backing prices and hazards.
func (p *Provider) Market() *market.Model { return p.mkt }

// OnInterruptionNotice registers a notice subscriber (EventBridge rule).
func (p *Provider) OnInterruptionNotice(fn NoticeFunc) { p.noticeSubs = append(p.noticeSubs, fn) }

// OnLaunch registers a launch subscriber.
func (p *Provider) OnLaunch(fn LaunchFunc) { p.launchSubs = append(p.launchSubs, fn) }

// OnTerminate registers a termination subscriber.
func (p *Provider) OnTerminate(fn TerminateFunc) { p.termSubs = append(p.termSubs, fn) }

// SetLaunchGate installs a veto over launches per (type, region), e.g.
// an AMI registry (Section 4's per-region image requirement). A nil gate
// clears it.
func (p *Provider) SetLaunchGate(gate func(catalog.InstanceType, catalog.Region) error) {
	p.launchGate = gate
}

func (p *Provider) gateCheck(t catalog.InstanceType, r catalog.Region) error {
	if p.launchGate == nil {
		return nil
	}
	return p.launchGate(t, r)
}

func (p *Provider) nextInstanceID() (InstanceID, int) {
	p.seq++
	p.idBuf = appendSeqID(p.idBuf[:0], "i", p.seq)
	return InstanceID(p.idBuf), p.seq
}

func (p *Provider) nextRequestID() RequestID {
	p.seq++
	p.idBuf = appendSeqID(p.idBuf[:0], "sir", p.seq)
	return RequestID(p.idBuf)
}

// appendSeqID appends "<prefix>-<seq>" with the sequence number
// zero-padded to at least six digits — the byte sequence the original
// fmt "%06d" formatting rendered. IDs are minted on the fleet hot loop
// (one per request plus one per launch), so formatting goes through a
// reused scratch buffer instead of fmt.
//
//spotverse:hotpath
func appendSeqID(dst []byte, prefix string, seq int) []byte {
	dst = append(dst, prefix...)
	dst = append(dst, '-')
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + seq%10)
		seq /= 10
		if seq == 0 {
			break
		}
	}
	for len(buf)-i < 6 {
		i--
		buf[i] = '0'
	}
	return append(dst, buf[i:]...)
}

// RunOnDemand launches an on-demand instance immediately.
func (p *Provider) RunOnDemand(t catalog.InstanceType, r catalog.Region, tag string) (*Instance, error) {
	if !p.mkt.Catalog().Offered(t, r) {
		return nil, fmt.Errorf("cloud: %s not offered in %s", t, r)
	}
	if err := p.gateCheck(t, r); err != nil {
		return nil, fmt.Errorf("cloud: launch gate: %w", err)
	}
	zones := p.mkt.Catalog().Zones(r)
	var az catalog.AZ
	if g := p.tagStream(tag); g != nil {
		az = zones[g.Intn(len(zones))]
	} else {
		az = zones[p.rng.Intn(len(zones))]
	}
	id, seq := p.nextInstanceID()
	inst := &Instance{
		ID:         id,
		seq:        seq,
		Type:       t,
		Region:     r,
		AZ:         az,
		Lifecycle:  LifecycleOnDemand,
		State:      StateRunning,
		LaunchedAt: p.eng.Now(),
		Tag:        tag,
	}
	p.instances[inst.ID] = inst
	p.notifyLaunch(inst)
	return inst, nil
}

// RequestSpot files a spot request for t in r. The request is evaluated
// immediately: with the market's launch-success probability it is
// fulfilled after a short placement delay; otherwise it stays open until
// a later EvaluateOpenRequests sweep or cancellation.
func (p *Provider) RequestSpot(t catalog.InstanceType, r catalog.Region, tag string) (*SpotRequest, error) {
	return p.RequestSpotWithBid(t, r, tag, 0)
}

// RequestSpotWithBid files a spot request with an explicit max price.
// maxPriceUSD zero bids the region's on-demand price (the paper's
// policy); a fulfilled instance is reclaimed with ReasonPrice when the
// spot price later crosses its bid.
func (p *Provider) RequestSpotWithBid(t catalog.InstanceType, r catalog.Region, tag string, maxPriceUSD float64) (*SpotRequest, error) {
	if !p.mkt.Catalog().Offered(t, r) {
		return nil, fmt.Errorf("cloud: %s not offered in %s", t, r)
	}
	if err := p.gateCheck(t, r); err != nil {
		return nil, fmt.Errorf("cloud: launch gate: %w", err)
	}
	if maxPriceUSD < 0 {
		return nil, fmt.Errorf("cloud: negative bid %v", maxPriceUSD)
	}
	if maxPriceUSD == 0 {
		od, err := p.mkt.Catalog().OnDemandPrice(t, r)
		if err != nil {
			return nil, err
		}
		maxPriceUSD = od
	}
	req := &SpotRequest{
		Type:        t,
		Region:      r,
		State:       RequestOpen,
		Created:     p.eng.Now(),
		Tag:         tag,
		MaxPriceUSD: maxPriceUSD,
	}
	if p.tagRand != nil {
		// Sharded fleet drivers never address a request by ID (no
		// Request lookups, no CancelRequest), so skip materializing the
		// ID string and the registry insert — one request per launch
		// attempt makes this a measurable share of the hot loop. The
		// sequence number still advances so instance IDs keep the exact
		// numbering of the unsharded paths.
		p.seq++
	} else {
		req.ID = p.nextRequestID()
		p.requests[req.ID] = req
	}
	if p.fleet {
		p.open = append(p.open, req)
	}
	p.evaluate(req)
	return req, nil
}

// evaluate makes one placement attempt for an open request.
func (p *Provider) evaluate(req *SpotRequest) {
	if req.State != RequestOpen {
		return
	}
	req.Attempts++
	prob, err := p.mkt.LaunchSuccessProbability(req.Type, req.Region, p.eng.Now())
	if err != nil {
		return
	}
	if g := p.tagStream(req.Tag); g != nil {
		if !g.Bool(prob) {
			return // stays open; the 15-minute sweep will retry
		}
	} else if !p.rng.Bool(prob) {
		return // stays open; the 15-minute sweep will retry
	}
	if p.fleet {
		// Every fulfill scheduled from the same sweep tick lands on the
		// same instant, so batching them into one per-instant bucket
		// collapses a wave of placements into a single heap entry.
		// Bucket order is add order, which matches the individually-
		// scheduled seq order.
		p.scheduleBatchedFulfill(req)
		return
	}
	p.eng.ScheduleAfter(p.fulfillDelay, "spot-fulfill", func() {
		if req.State != RequestOpen {
			return
		}
		p.fulfill(req)
	})
}

// tagStream resolves a workload tag to its private random stream, or
// nil when the provider draws from its sequential stream.
func (p *Provider) tagStream(tag string) *simclock.SplitMix64 {
	if p.tagRand == nil {
		return nil
	}
	return p.tagRand(tag)
}

func (p *Provider) fulfill(req *SpotRequest) {
	price, az, err := p.mkt.RegionSpotPrice(req.Type, req.Region, p.eng.Now())
	if err != nil {
		return
	}
	if req.MaxPriceUSD > 0 && price > req.MaxPriceUSD {
		// Spot price already above the bid: the request stays open until
		// a sweep finds the price back under it.
		return
	}
	id, seq := p.nextInstanceID()
	inst := &Instance{
		ID:         id,
		seq:        seq,
		Type:       req.Type,
		Region:     req.Region,
		AZ:         az,
		Lifecycle:  LifecycleSpot,
		State:      StateRunning,
		LaunchedAt: p.eng.Now(),
		Tag:        req.Tag,
		BidUSD:     req.MaxPriceUSD,
	}
	p.instances[inst.ID] = inst
	req.State = RequestActive
	req.Instance = inst.ID
	if p.fleet {
		// The request is resolved; release the record so retention stays
		// proportional to open requests, not requests-ever-filed.
		delete(p.requests, req.ID)
	}
	p.scheduleInterruption(inst)
	p.schedulePriceInterruption(inst)
	p.notifyLaunch(inst)
}

// schedulePriceInterruption scans the deterministic price walk forward
// and, if the spot price will cross the instance's bid, schedules a
// price-based reclaim (with the usual two-minute notice) at that step.
func (p *Provider) schedulePriceInterruption(inst *Instance) {
	if inst.BidUSD <= 0 {
		return
	}
	now := p.eng.Now()
	// One walk resolution for the whole scan (up to 240 steps) instead
	// of a map lookup per step; the samples are the same SpotPrice ones.
	series, err := p.mkt.PriceSeries(inst.Type, inst.AZ)
	if err != nil {
		return
	}
	at, ok := p.nextPriceCross(inst, series, now)
	if !ok {
		return
	}
	noticeAt := at.Add(-NoticeWindow)
	if noticeAt.Before(now) {
		noticeAt = now
	}
	if p.tagRand == nil || len(p.noticeSubs) > 0 {
		if p.pastEventHorizon(noticeAt) {
			return
		}
		ev, err := p.eng.ScheduleAt(noticeAt, "spot-price-notice", func() {
			if inst.State != StateRunning {
				return
			}
			for _, fn := range p.noticeSubs {
				fn(inst)
			}
		})
		if err != nil {
			return
		}
		inst.priceNoticeEv = ev
	}
	// Sharded fleet drivers (tagRand set, no notice subscribers) skip
	// the price-notice event above entirely — with nobody listening it
	// would fire into a void — and schedule only the reclaim.
	if p.pastEventHorizon(at) {
		return
	}
	termEv, err := p.eng.ScheduleAt(at, "spot-price-reclaim", func() {
		if inst.State != StateRunning {
			return
		}
		inst.Reason = ReasonPrice
		p.finalize(inst, true)
	})
	if err != nil {
		if inst.priceNoticeEv != nil {
			inst.priceNoticeEv.Cancel()
			inst.priceNoticeEv = nil
		}
		return
	}
	inst.priceTermEv = termEv
}

// priceScanHorizon bounds how far ahead the price-crossing scan looks;
// beyond it a crossing would outlive any experiment horizon in use.
const priceScanHorizon = 60 * 24 * time.Hour

// nextPriceCross returns the first price step strictly after now at
// which the walk crosses above the bid, if any within the scan
// horizon. In fleet mode the answer is memoized per (type, AZ, bid):
// every same-bid launch in an AZ shares one crossing scan instead of
// re-walking up to 240 steps, which is the single hottest loop of a
// fleet-scale run.
func (p *Provider) nextPriceCross(inst *Instance, series market.PriceSeries, now time.Time) (time.Time, bool) {
	from := now.Truncate(market.PriceStep).Add(market.PriceStep)
	end := now.Add(priceScanHorizon)
	if !p.fleet {
		for at := from; at.Before(end); at = at.Add(market.PriceStep) {
			if series.At(at) > inst.BidUSD {
				return at, true
			}
		}
		return time.Time{}, false
	}
	return p.cachedPriceCross(inst, series, from, end)
}

// scheduleInterruption draws the instance's reclaim time from the
// market's (optionally seasonal) hazard at launch and schedules
// notice + termination.
func (p *Provider) scheduleInterruption(inst *Instance) {
	hazard, err := p.mkt.SeasonalHazardPerHour(inst.Type, inst.Region, p.eng.Now())
	if err != nil || hazard <= 0 {
		return
	}
	var hours float64
	if g := p.tagStream(inst.Tag); g != nil {
		hours = g.Exp(1 / hazard)
	} else {
		hours = p.rng.Exp(1 / hazard)
	}
	ttl := time.Duration(hours * float64(time.Hour))
	if ttl > 365*24*time.Hour {
		return // effectively never in any experiment horizon
	}
	noticeAt := ttl - NoticeWindow
	if noticeAt < 0 {
		noticeAt = 0
	}
	now := p.eng.Now()
	reclaimAt := now.Add(ttl)
	if p.tagRand != nil && len(p.noticeSubs) == 0 {
		// Sharded fleet drivers register no notice subscribers, so the
		// notice event would fire into a void purely to schedule the
		// reclaim. Schedule the reclaim directly instead — it fires
		// under exactly the same condition (reclaim instant before the
		// event horizon), but the notice Event, its closure, and its
		// firing all disappear from the hot loop.
		if p.pastEventHorizon(reclaimAt) {
			return
		}
		inst.termEv = p.eng.ScheduleAfter(ttl, "spot-reclaim", func() {
			if inst.State != StateRunning {
				return
			}
			inst.Reason = ReasonCapacity
			p.finalize(inst, true)
		})
		return
	}
	if p.pastEventHorizon(now.Add(noticeAt)) {
		return // neither notice nor reclaim can fire before the hard stop
	}
	inst.noticeEv = p.eng.ScheduleAfter(noticeAt, "spot-notice", func() {
		if inst.State != StateRunning {
			return
		}
		for _, fn := range p.noticeSubs {
			fn(inst)
		}
		if p.fleet && inst.State == StateRunning && !p.pastEventHorizon(reclaimAt) {
			// Fleet mode defers the reclaim event until its notice has
			// fired: most instances complete first and cancel the notice,
			// so the reclaim Event (and its closure, built lazily here)
			// is never allocated and the queue stays one entry per
			// at-risk instance, not two. Reclaim instants are continuous
			// hazard draws, so the later seq cannot reorder against any
			// same-instant event.
			inst.termEv, _ = p.eng.ScheduleAt(reclaimAt, "spot-reclaim", func() {
				if inst.State != StateRunning {
					return
				}
				inst.Reason = ReasonCapacity
				p.finalize(inst, true)
			})
		}
	})
	if !p.fleet {
		inst.termEv = p.eng.ScheduleAfter(ttl, "spot-reclaim", func() {
			if inst.State != StateRunning {
				return
			}
			inst.Reason = ReasonCapacity
			p.finalize(inst, true)
		})
	}
}

// Terminate ends an instance at the caller's request.
func (p *Provider) Terminate(id InstanceID) error {
	inst, ok := p.instances[id]
	if !ok {
		return fmt.Errorf("terminate %s: %w", id, ErrNotFound)
	}
	if inst.State != StateRunning {
		return fmt.Errorf("terminate %s: %w", id, ErrNotRunning)
	}
	p.finalize(inst, false)
	return nil
}

func (p *Provider) finalize(inst *Instance, interrupted bool) {
	inst.State = StateTerminated
	inst.TerminatedAt = p.eng.Now()
	inst.Interrupted = interrupted
	if inst.noticeEv != nil {
		inst.noticeEv.Cancel()
	}
	if inst.termEv != nil {
		inst.termEv.Cancel()
	}
	if inst.priceNoticeEv != nil {
		inst.priceNoticeEv.Cancel()
	}
	if inst.priceTermEv != nil {
		inst.priceTermEv.Cancel()
	}
	inst.CostUSD = p.costBetween(inst, inst.LaunchedAt, inst.TerminatedAt)
	for _, fn := range p.termSubs {
		fn(inst, interrupted)
	}
	if p.fleet {
		// Keep only the (seq, cost) pair the total-cost sum needs and
		// release the record: fleet retention is O(running), not
		// O(instances-ever-launched).
		p.retired = append(p.retired, retiredCost{seq: inst.seq, cost: inst.CostUSD})
		delete(p.instances, inst.ID)
	}
}

// costBetween integrates the instance's hourly price over [from, to],
// sampling spot prices at market price-step boundaries (per-second
// billing under a piecewise-constant price).
func (p *Provider) costBetween(inst *Instance, from, to time.Time) float64 {
	if !to.After(from) {
		return 0
	}
	if inst.Lifecycle == LifecycleOnDemand {
		od, err := p.mkt.Catalog().OnDemandPrice(inst.Type, inst.Region)
		if err != nil {
			return 0
		}
		return od * to.Sub(from).Hours()
	}
	series, err := p.mkt.PriceSeries(inst.Type, inst.AZ)
	if err != nil {
		return 0
	}
	var cost float64
	for seg := from; seg.Before(to); {
		segEnd := seg.Truncate(market.PriceStep).Add(market.PriceStep)
		if segEnd.After(to) {
			segEnd = to
		}
		cost += series.At(seg) * segEnd.Sub(seg).Hours()
		seg = segEnd
	}
	return cost
}

// AccruedCost reports the instance's cost up to now (final if terminated).
func (p *Provider) AccruedCost(id InstanceID) (float64, error) {
	inst, ok := p.instances[id]
	if !ok {
		return 0, fmt.Errorf("accrued cost %s: %w", id, ErrNotFound)
	}
	if inst.State == StateTerminated {
		return inst.CostUSD, nil
	}
	return p.costBetween(inst, inst.LaunchedAt, p.eng.Now()), nil
}

// CancelRequest cancels an open spot request; active requests are left
// untouched (the instance keeps running). In fleet mode resolved
// requests are released as they settle, so cancelling an ID the
// provider no longer tracks is a no-op rather than an error.
func (p *Provider) CancelRequest(id RequestID) error {
	req, ok := p.requests[id]
	if !ok {
		if p.fleet {
			return nil
		}
		return fmt.Errorf("cancel %s: %w", id, ErrNotFound)
	}
	if req.State == RequestOpen {
		req.State = RequestCancelled
		if p.fleet {
			delete(p.requests, id)
		}
	}
	return nil
}

// EvaluateOpenRequests retries placement for every open request; the
// Controller drives this from its 15-minute CloudWatch sweep. It returns
// how many requests were (re)attempted.
func (p *Provider) EvaluateOpenRequests() int {
	if p.fleet {
		return p.evaluateOpenIndexed()
	}
	ids := make([]RequestID, 0, len(p.requests))
	for id, req := range p.requests {
		if req.State == RequestOpen {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p.evaluate(p.requests[id])
	}
	return len(ids)
}

// OpenRequests returns the currently open spot requests, oldest first.
func (p *Provider) OpenRequests() []*SpotRequest {
	var out []*SpotRequest
	for _, req := range p.requests {
		if req.State == RequestOpen {
			out = append(out, req)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Instance returns an instance record by ID.
func (p *Provider) Instance(id InstanceID) (*Instance, error) {
	inst, ok := p.instances[id]
	if !ok {
		return nil, fmt.Errorf("instance %s: %w", id, ErrNotFound)
	}
	return inst, nil
}

// Request returns a spot request record by ID.
func (p *Provider) Request(id RequestID) (*SpotRequest, error) {
	req, ok := p.requests[id]
	if !ok {
		return nil, fmt.Errorf("request %s: %w", id, ErrNotFound)
	}
	return req, nil
}

// RunningInstances returns all running instances ordered by ID.
func (p *Provider) RunningInstances() []*Instance {
	var out []*Instance
	for _, inst := range p.instances {
		if inst.State == StateRunning {
			out = append(out, inst)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AllInstances returns every instance ever launched, ordered by ID.
func (p *Provider) AllInstances() []*Instance {
	out := make([]*Instance, 0, len(p.instances))
	for _, inst := range p.instances {
		out = append(out, inst)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TotalInstanceCost sums accrued cost over all instances (running ones
// billed to the current instant). Summation follows instance-ID order so
// the floating-point result is deterministic.
func (p *Provider) TotalInstanceCost() float64 {
	if p.fleet {
		return p.fleetTotalCost()
	}
	var sum float64
	for _, inst := range p.AllInstances() {
		if inst.State == StateTerminated {
			sum += inst.CostUSD
		} else {
			sum += p.costBetween(inst, inst.LaunchedAt, p.eng.Now())
		}
	}
	return sum
}

func (p *Provider) notifyLaunch(inst *Instance) {
	for _, fn := range p.launchSubs {
		fn(inst)
	}
}
