package cloud

import (
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/market"
	"spotverse/internal/simclock"
)

// Bid-price semantics: the paper bids on-demand (never crossed by the
// post-2017 smooth prices), but low bids must trigger price-based
// reclaims with the usual warning.

func TestDefaultBidIsOnDemand(t *testing.T) {
	_, p := newProvider(20)
	req, err := p.RequestSpot(catalog.M5XLarge, "eu-north-1", "w")
	if err != nil {
		t.Fatal(err)
	}
	od, _ := p.Market().Catalog().OnDemandPrice(catalog.M5XLarge, "eu-north-1")
	if req.MaxPriceUSD != od {
		t.Fatalf("bid = %v, want on-demand %v", req.MaxPriceUSD, od)
	}
}

func TestNegativeBidRejected(t *testing.T) {
	_, p := newProvider(21)
	if _, err := p.RequestSpotWithBid(catalog.M5XLarge, "eu-north-1", "w", -1); err == nil {
		t.Fatal("negative bid accepted")
	}
}

func TestBidBelowCurrentPriceStaysOpen(t *testing.T) {
	eng, p := newProvider(22)
	price, _, err := p.Market().RegionSpotPrice(catalog.M5XLarge, "eu-north-1", eng.Now())
	if err != nil {
		t.Fatal(err)
	}
	req, err := p.RequestSpotWithBid(catalog.M5XLarge, "eu-north-1", "w", price/2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		_ = eng.RunFor(15 * time.Minute)
		p.EvaluateOpenRequests()
	}
	_ = eng.RunFor(time.Minute)
	if req.State == RequestActive {
		t.Fatal("request fulfilled despite bid below market")
	}
}

func TestLowBidTriggersPriceReclaim(t *testing.T) {
	// Find a seed/AZ where the price rises above its launch value within
	// a month, then bid just above launch price: a price reclaim must
	// land, with notice first, and Reason must say price.
	eng := simclock.NewEngine()
	mkt := market.New(catalog.Default(), 23, simclock.Epoch)
	p := New(eng, mkt, 23)

	launchPrice, _, err := mkt.RegionSpotPrice(catalog.M5XLarge, "eu-north-1", eng.Now())
	if err != nil {
		t.Fatal(err)
	}
	bid := launchPrice * 1.01
	req, err := p.RequestSpotWithBid(catalog.M5XLarge, "eu-north-1", "w", bid)
	if err != nil {
		t.Fatal(err)
	}
	var notices int
	p.OnInterruptionNotice(func(*Instance) { notices++ })
	for i := 0; i < 20 && req.State == RequestOpen; i++ {
		_ = eng.RunFor(15 * time.Minute)
		p.EvaluateOpenRequests()
	}
	_ = eng.RunFor(time.Minute)
	if req.State != RequestActive {
		t.Skip("placement unlucky for this seed")
	}
	inst, _ := p.Instance(req.Instance)
	_ = eng.Run(simclock.Epoch.Add(45 * 24 * time.Hour))
	if inst.State != StateTerminated || !inst.Interrupted {
		t.Skip("price never crossed the tight bid for this seed")
	}
	if inst.Reason != ReasonPrice && inst.Reason != ReasonCapacity {
		t.Fatalf("reason = %v", inst.Reason)
	}
	if inst.Reason == ReasonPrice {
		finalPrice, err := mkt.SpotPrice(catalog.M5XLarge, inst.AZ, inst.TerminatedAt)
		if err != nil {
			t.Fatal(err)
		}
		if finalPrice <= bid {
			t.Fatalf("price reclaim at %v but price %v <= bid %v", inst.TerminatedAt, finalPrice, bid)
		}
		if notices == 0 {
			t.Fatal("price reclaim without notice")
		}
	}
}

func TestOnDemandBidNeverPriceReclaimed(t *testing.T) {
	// With the paper's on-demand bid, all interruptions must be
	// capacity-based.
	eng, p := newProvider(24)
	for i := 0; i < 30; i++ {
		_, _ = p.RequestSpot(catalog.M5XLarge, "ca-central-1", "w")
	}
	sweep := eng.Every(15*time.Minute, "sweep", func(time.Time) { p.EvaluateOpenRequests() })
	defer sweep.Stop()
	_ = eng.Run(simclock.Epoch.Add(5 * 24 * time.Hour))
	for _, inst := range p.AllInstances() {
		if inst.Interrupted && inst.Reason == ReasonPrice {
			t.Fatalf("instance %s price-reclaimed under an on-demand bid", inst.ID)
		}
	}
}
