package cloud

import (
	"sort"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/market"
	"spotverse/internal/simclock"
)

// retiredCost is what fleet mode keeps of a terminated instance: its
// allocation sequence (so the total-cost sum can stay in ID order) and
// its final cost.
type retiredCost struct {
	seq  int
	cost float64
}

// EnableFleetMode switches the provider into bounded-retention,
// batch-scheduling operation for fleet-scale runs:
//
//   - Open spot requests are tracked in an index, so the 15-minute
//     retry sweep is O(open requests) instead of scanning every request
//     ever filed.
//   - Resolved requests (fulfilled or cancelled) and terminated
//     instances are released as they settle; only a (seq, cost) pair
//     survives per terminated instance, keeping retention proportional
//     to what is running, not to run history.
//   - Fulfill callbacks are batched into pooled per-instant buckets: a
//     sweep wave fulfilling thousands of requests 45 seconds later
//     costs one heap entry (and no per-request closure), not thousands.
//
// Observable behavior is unchanged — the sweep evaluates requests in
// the same ID order, batched fulfills fire in the same order as
// individually-scheduled ones, and TotalInstanceCost sums in the same
// ID order — so runs are bit-identical to the default path. The
// differences are in what the provider retains: AllInstances and
// Instance only cover running (plus not-yet-released) records, and
// Request no longer resolves settled requests. Callers that need full
// history (the per-workload experiment path) simply leave fleet mode
// off. Enable before filing any work; flipping modes mid-run is not
// supported.
func (p *Provider) EnableFleetMode() {
	if p.fleet {
		return
	}
	p.fleet = true
	p.fulfillAt = make(map[int64][]*SpotRequest)
	p.fulfillCb = p.fireFulfills
	p.crossCache = make(map[crossKey]crossState)
}

// SetWorkloadRand installs a per-workload random-stream resolver: draws
// that decide one workload's trajectory — the launch-success roll, the
// on-demand AZ pick, the interruption TTL — come from the stream the
// resolver returns for the instance/request tag instead of the
// provider-wide sequential "cloud" stream. A workload's draw sequence
// then depends only on its own simulated history, which is what lets a
// sharded fleet run produce bit-identical trajectories at any shard
// count. A nil resolver (or a nil stream for a tag) falls back to the
// sequential stream. Install before filing any work.
func (p *Provider) SetWorkloadRand(fn func(tag string) *simclock.SplitMix64) {
	p.tagRand = fn
}

// SetEventHorizon declares that the caller stops driving the engine at
// exactly t: events due at or after t can never fire, so the provider
// skips scheduling them at all (interruption notices and reclaims,
// price-crossing events, batched fulfills). Callers whose run can
// execute events past t — the default experiment loops, which stop on
// the first event *after* the horizon — must not set this. Zero clears
// it.
func (p *Provider) SetEventHorizon(t time.Time) {
	if t.IsZero() {
		p.eventHorizonNs = 0
		return
	}
	p.eventHorizonNs = t.UnixNano()
}

// pastEventHorizon reports whether an event due at t could never fire
// under the declared event horizon.
//
//spotverse:hotpath
func (p *Provider) pastEventHorizon(t time.Time) bool {
	return p.eventHorizonNs != 0 && t.UnixNano() >= p.eventHorizonNs
}

// scheduleBatchedFulfill queues req's placement p.fulfillDelay from
// now, batched with every other placement landing on that instant. The
// bucket's engine event is scheduled when the bucket is created, so
// event sequence numbers — and therefore same-instant ordering — match
// the individually-scheduled path exactly.
//
// The callback is the single prebound p.fulfillCb — fireFulfills
// recovers the bucket key from the engine clock at fire time — and
// fired buckets' backing arrays are recycled through bucketPool, so a
// relaunch wave costs map traffic only, no per-bucket closure, struct,
// or slice allocation. (Not hotpath-annotated: each new bucket
// legitimately allocates one engine Event.)
func (p *Provider) scheduleBatchedFulfill(req *SpotRequest) {
	at := p.eng.Now().Add(p.fulfillDelay)
	if p.pastEventHorizon(at) {
		return // the run stops before the placement could land
	}
	atNs := at.UnixNano()
	b, live := p.fulfillAt[atNs]
	if !live {
		if n := len(p.bucketPool); n > 0 {
			b = p.bucketPool[n-1]
			p.bucketPool = p.bucketPool[:n-1]
		}
		p.eng.ScheduleAfter(p.fulfillDelay, "spot-fulfill", p.fulfillCb)
	}
	p.fulfillAt[atNs] = append(b, req)
}

// fireFulfills runs one bucket's placements in add order — the order
// individually-scheduled fulfill events would have fired in. The bucket
// due now is exactly the one keyed by the engine clock: each key gets
// one event, scheduled at bucket creation for that instant.
func (p *Provider) fireFulfills() {
	atNs := p.eng.Now().UnixNano()
	b := p.fulfillAt[atNs]
	delete(p.fulfillAt, atNs)
	p.batchFired++
	for i, req := range b {
		b[i] = nil // no settled-request retention via the pooled array
		if req.State != RequestOpen {
			continue
		}
		p.fulfill(req)
	}
	if b != nil {
		p.bucketPool = append(p.bucketPool, b[:0])
	}
}

// BatchEventsFired reports how many batched-fulfill bucket events have
// executed. The count is engine-shape bookkeeping (how placements were
// coalesced), not simulation outcome; the sharded fleet driver
// subtracts it when building its shard-count-invariant event total.
func (p *Provider) BatchEventsFired() uint64 { return p.batchFired }

// crossKey identifies one price-crossing question: will the walk for
// this (type, AZ) cross above this bid? Every instance launched with
// the same bid in the same AZ shares the answer.
type crossKey struct {
	t   catalog.InstanceType
	az  catalog.AZ
	bid float64
}

// crossState is the memoized answer. Exactly one of the two shapes is
// stored: a found crossing (hasCross, crossNs), or a scanned window
// [.., scannedNs) known to contain no crossing.
type crossState struct {
	hasCross  bool
	crossNs   int64
	scannedNs int64
}

// cachedPriceCross serves nextPriceCross from the fleet-mode crossing
// cache. Scan starts only move forward in simulated time, so a cached
// crossing at/after `from` is still the *first* crossing after `from`
// (the earlier scan that found it covered every step in between), and
// a cached no-crossing window lets a rescan skip the covered prefix.
// The price walk is pure, so the memoized answer is exact and the
// scheduled reclaim instants are bit-identical to the default path's.
func (p *Provider) cachedPriceCross(inst *Instance, series market.PriceSeries, from, end time.Time) (time.Time, bool) {
	key := crossKey{t: inst.Type, az: inst.AZ, bid: inst.BidUSD}
	c := p.crossCache[key]
	fromNs, endNs := from.UnixNano(), end.UnixNano()
	if c.hasCross && c.crossNs >= fromNs {
		if c.crossNs < endNs {
			return time.Unix(0, c.crossNs).UTC(), true
		}
		return time.Time{}, false
	}
	scan := from
	if !c.hasCross && c.scannedNs > fromNs {
		// Resume at the first grid step at/after the covered window;
		// every earlier step was already scanned crossing-free.
		covered := time.Unix(0, c.scannedNs).UTC()
		scan = covered.Truncate(market.PriceStep)
		if scan.Before(covered) {
			scan = scan.Add(market.PriceStep)
		}
	}
	for at := scan; at.Before(end); at = at.Add(market.PriceStep) {
		if series.At(at) > inst.BidUSD {
			p.crossCache[key] = crossState{hasCross: true, crossNs: at.UnixNano()}
			return at, true
		}
	}
	p.crossCache[key] = crossState{scannedNs: endNs}
	return time.Time{}, false
}

// FleetMode reports whether EnableFleetMode was called.
func (p *Provider) FleetMode() bool { return p.fleet }

// evaluateOpenIndexed is the fleet-mode retry sweep. The open index is
// append-ordered, and request IDs are fixed-width and monotonic, so
// index order equals the sorted-ID order of the default sweep. Settled
// entries are compacted out in the same pass.
//
//spotverse:hotpath
func (p *Provider) evaluateOpenIndexed() int {
	live := p.open[:0]
	n := 0
	for _, req := range p.open {
		if req.State != RequestOpen {
			continue
		}
		live = append(live, req)
		//spotverse:allow hotpath evaluate builds its fulfill closure only after a successful launch roll; failed-roll sweep iterations return before it
		p.evaluate(req)
		n++
	}
	for i := len(live); i < len(p.open); i++ {
		p.open[i] = nil
	}
	p.open = live
	return n
}

// fleetTotalCost merges retired (seq, cost) pairs with still-live
// instances and sums in allocation order, reproducing the default
// path's ID-ordered float summation exactly.
func (p *Provider) fleetTotalCost() float64 {
	entries := make([]retiredCost, 0, len(p.retired)+len(p.instances))
	entries = append(entries, p.retired...)
	for _, inst := range p.instances {
		cost := inst.CostUSD
		if inst.State != StateTerminated {
			cost = p.costBetween(inst, inst.LaunchedAt, p.eng.Now())
		}
		entries = append(entries, retiredCost{seq: inst.seq, cost: cost})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	var sum float64
	for _, e := range entries {
		sum += e.cost
	}
	return sum
}
