package cloud

import (
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/market"
	"spotverse/internal/simclock"
)

// TestSeasonalInterruptionRates verifies that with seasonality enabled,
// instances launched during weekday business hours get reclaimed faster
// than instances launched on the weekend.
func TestSeasonalInterruptionRates(t *testing.T) {
	survival := func(launchOffset time.Duration) float64 {
		eng := simclock.NewEngineAt(simclock.Epoch)
		mkt := market.New(catalog.Default(), 7, simclock.Epoch)
		mkt.EnableSeasonality()
		p := New(eng, mkt, 7)
		_ = eng.RunFor(launchOffset)
		const n = 300
		for i := 0; i < n; i++ {
			if _, err := p.RequestSpot(catalog.M5XLarge, "ca-central-1", "w"); err != nil {
				t.Fatal(err)
			}
		}
		sweep := eng.Every(15*time.Minute, "sweep", func(time.Time) { p.EvaluateOpenRequests() })
		defer sweep.Stop()
		_ = eng.RunFor(6 * time.Hour)
		launched, running := 0, 0
		for _, inst := range p.AllInstances() {
			launched++
			if inst.State == StateRunning {
				running++
			}
		}
		if launched < n*8/10 {
			t.Fatalf("only %d/%d launched", launched, n)
		}
		return float64(running) / float64(launched)
	}
	// Epoch is Monday 00:00 UTC: 15h offset lands in Monday's business
	// peak; 5 days + 15h lands on Saturday afternoon (off-peak).
	peakSurvival := survival(15 * time.Hour)
	weekendSurvival := survival(5*24*time.Hour + 15*time.Hour)
	if peakSurvival >= weekendSurvival {
		t.Fatalf("peak survival %v >= weekend %v; seasonality not biting", peakSurvival, weekendSurvival)
	}
}

// TestLaunchGateBlocksFulfilment covers the AMI-gate path added to the
// provider: gated regions reject both entry points.
func TestLaunchGateBlocksFulfilment(t *testing.T) {
	eng := simclock.NewEngine()
	mkt := market.New(catalog.Default(), 8, simclock.Epoch)
	p := New(eng, mkt, 8)
	blocked := map[catalog.Region]bool{"eu-north-1": true}
	p.SetLaunchGate(func(_ catalog.InstanceType, r catalog.Region) error {
		if blocked[r] {
			return ErrNotFound // any error will do for the gate
		}
		return nil
	})
	if _, err := p.RequestSpot(catalog.M5XLarge, "eu-north-1", "w"); err == nil {
		t.Fatal("gated spot request accepted")
	}
	if _, err := p.RunOnDemand(catalog.M5XLarge, "eu-north-1", "w"); err == nil {
		t.Fatal("gated on-demand accepted")
	}
	if _, err := p.RequestSpot(catalog.M5XLarge, "us-east-1", "w"); err != nil {
		t.Fatalf("ungated region rejected: %v", err)
	}
	p.SetLaunchGate(nil)
	if _, err := p.RunOnDemand(catalog.M5XLarge, "eu-north-1", "w"); err != nil {
		t.Fatalf("clearing the gate failed: %v", err)
	}
}
