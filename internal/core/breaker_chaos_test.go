package core

import (
	"sync"
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/chaos"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
)

// lambdaBrownout is a switchable injected fault on the interruption
// handler's Lambda: while on, every invocation fails with a typed chaos
// brownout attributed to one region, the error shape breakerKey
// attributes per-(service, region).
type lambdaBrownout struct{ on bool }

func (f *lambdaBrownout) fault(op string, _ catalog.Region) error {
	if !f.on {
		return nil
	}
	return &chaos.Error{Class: chaos.Unavailable, Service: chaos.ServiceLambda, Op: op, Region: "eu-west-1"}
}

// breakerHarness deploys a manager whose handler Lambda is behind a
// switchable brownout, with a single-failure breaker so one exhausted
// execution trips it.
func breakerHarness(t *testing.T, seed int64) (*SpotVerse, Deps, *lambdaBrownout, map[string]bool) {
	t.Helper()
	sv, deps := newSpotVerse(t, Config{
		Seed:            seed,
		Threshold:       5,
		BreakerFailures: 1,
		BreakerCooldown: 30 * time.Minute,
	})
	bo := &lambdaBrownout{on: true}
	deps.Lambda.SetFault(bo.fault)
	relaunched := make(map[string]bool)
	return sv, deps, bo, relaunched
}

func interruptWorkload(t *testing.T, sv *SpotVerse, id string, relaunched map[string]bool) {
	t.Helper()
	if err := sv.OnInterrupted(id, "ca-central-1", func(strategy.Placement) {
		relaunched[id] = true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerChaosHalfOpenProbeCloses(t *testing.T) {
	sv, deps, bo, relaunched := breakerHarness(t, 31)
	interruptWorkload(t, sv, "w1", relaunched)
	// Step Functions exhausts its retries against the brownout; the final
	// failure trips the one-failure breaker.
	if err := deps.Engine.Run(simclock.Epoch.Add(5 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	_, trips, _ := sv.Controller().ResilienceStats()
	if trips != 1 {
		t.Fatalf("trips = %d after exhausted execution, want 1", trips)
	}
	// While open, new interruptions are deferred, not burned into the
	// browned-out dependency.
	interruptWorkload(t, sv, "w2", relaunched)
	if err := deps.Engine.Run(simclock.Epoch.Add(20 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, _, skips := sv.Controller().ResilienceStats(); skips == 0 {
		t.Fatal("open breaker deferred nothing")
	}
	if relaunched["w2"] {
		t.Fatal("w2 relaunched while the breaker was open")
	}
	// The brownout lifts. Past the cooldown the recovery sweep's trial
	// execution half-opens the breaker; its success closes it and both
	// migrations complete.
	bo.on = false
	if err := deps.Engine.Run(simclock.Epoch.Add(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if !relaunched["w1"] || !relaunched["w2"] {
		t.Fatalf("relaunches after recovery: w1=%v w2=%v, want both", relaunched["w1"], relaunched["w2"])
	}
	if _, trips, _ := sv.Controller().ResilienceStats(); trips != 1 {
		t.Fatalf("trips = %d after successful probe, want still 1 (half-open closed, not re-tripped)", trips)
	}
}

func TestBreakerChaosHalfOpenProbeReTrips(t *testing.T) {
	sv, deps, _, relaunched := breakerHarness(t, 32)
	interruptWorkload(t, sv, "w1", relaunched)
	// The brownout never lifts: every post-cooldown trial execution fails
	// and re-trips the breaker immediately.
	if err := deps.Engine.Run(simclock.Epoch.Add(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	_, trips, skips := sv.Controller().ResilienceStats()
	if trips < 2 {
		t.Fatalf("trips = %d under a sustained brownout, want >= 2 (failed probes re-trip)", trips)
	}
	if skips == 0 {
		t.Fatal("sustained brownout deferred nothing")
	}
	if relaunched["w1"] {
		t.Fatal("w1 relaunched through a permanent brownout")
	}
}

// TestBreakerConcurrentProbes pins the breaker's concurrency contract
// under -race: the raw state machine is engine-serialised inside the
// Controller, so out-of-engine users must guard it with a mutex — and
// under that guard, interleaved probes keep the state machine coherent
// (valid state, streak strictly below threshold, trips monotone).
func TestBreakerConcurrentProbes(t *testing.T) {
	b := newBreaker(3, time.Minute)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				at := simclock.Epoch.Add(time.Duration(i) * time.Second)
				mu.Lock()
				if b.allow(at) {
					if (g+i)%3 == 0 {
						b.success()
					} else {
						b.failure(at)
					}
				}
				state, streak, trips := b.state, b.consecutive, b.trips
				mu.Unlock()
				if state != breakerClosed && state != breakerOpen && state != breakerHalfOpen {
					t.Errorf("invalid breaker state %d", state)
					return
				}
				if streak < 0 || streak >= 3 {
					t.Errorf("consecutive streak %d outside [0, threshold)", streak)
					return
				}
				if trips < 0 {
					t.Errorf("negative trips %d", trips)
					return
				}
			}
		}()
	}
	wg.Wait()
	if b.trips == 0 {
		t.Fatal("a failure-heavy interleaving never tripped the breaker")
	}
}
