package core

import (
	"testing"
	"time"

	"spotverse/internal/simclock"
)

func TestBreakerTripsAtThreshold(t *testing.T) {
	b := newBreaker(3, 30*time.Minute)
	now := simclock.Epoch
	for i := 0; i < 2; i++ {
		b.failure(now)
		if !b.allow(now) {
			t.Fatalf("breaker open after %d failures, threshold 3", i+1)
		}
	}
	b.failure(now)
	if b.allow(now) {
		t.Fatal("breaker still closed at threshold")
	}
	if b.trips != 1 {
		t.Fatalf("trips = %d", b.trips)
	}
}

func TestBreakerHalfOpenAfterCooldown(t *testing.T) {
	b := newBreaker(1, 30*time.Minute)
	now := simclock.Epoch
	b.failure(now)
	if b.allow(now.Add(29 * time.Minute)) {
		t.Fatal("breaker allowed a call before the cooldown elapsed")
	}
	if !b.allow(now.Add(30 * time.Minute)) {
		t.Fatal("breaker did not half-open after the cooldown")
	}
	// Success in half-open closes it for good.
	b.success()
	if !b.allow(now.Add(31 * time.Minute)) {
		t.Fatal("closed breaker rejected a call")
	}
}

func TestBreakerHalfOpenReTripsImmediately(t *testing.T) {
	b := newBreaker(3, 30*time.Minute)
	now := simclock.Epoch
	for i := 0; i < 3; i++ {
		b.failure(now)
	}
	later := now.Add(time.Hour)
	if !b.allow(later) {
		t.Fatal("breaker did not half-open")
	}
	// A single failure re-trips a half-open breaker — no need to reach
	// the threshold again.
	b.failure(later)
	if b.allow(later) {
		t.Fatal("half-open breaker survived a trial failure")
	}
	if b.trips != 2 {
		t.Fatalf("trips = %d, want 2", b.trips)
	}
}

func TestBreakerSuccessClearsStreak(t *testing.T) {
	b := newBreaker(3, 30*time.Minute)
	now := simclock.Epoch
	b.failure(now)
	b.failure(now)
	b.success()
	b.failure(now)
	b.failure(now)
	if !b.allow(now) {
		t.Fatal("success did not reset the consecutive-failure streak")
	}
}
