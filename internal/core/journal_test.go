package core

import (
	"errors"
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
)

const testRegion = catalog.Region("us-east-1")

var errTestFault = errors.New("test fault")

func TestCrashRestartReplaysJournaledPending(t *testing.T) {
	sv, deps := newSpotVerse(t, Config{Journal: true, Seed: 901})
	relaunched := 0
	if err := sv.OnInterrupted("w1", testRegion, func(strategy.Placement) { relaunched++ }); err != nil {
		t.Fatal(err)
	}

	// The write-ahead record must be durable before the crash.
	items, err := deps.Dynamo.Scan(JournalTable, "jrnl#")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Attrs["open"] != "1" {
		t.Fatalf("journal before crash = %+v", items)
	}

	sv.CrashRestart()
	restarts, replayed, dropped, _, _, _ := sv.Controller().RecoveryStats()
	if restarts != 1 || replayed != 1 || dropped != 0 {
		t.Fatalf("restarts=%d replayed=%d dropped=%d, want 1/1/0", restarts, replayed, dropped)
	}

	// The pre-crash Step Functions execution survives the kill (it is an
	// AWS-side actor) and still owns the relaunch closure: exactly one
	// relaunch lands, committed through the journal's conditional write.
	if err := deps.Engine.Run(simclock.Epoch.Add(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if relaunched != 1 {
		t.Fatalf("relaunched = %d, want exactly 1", relaunched)
	}
	items, _ = deps.Dynamo.Scan(JournalTable, "jrnl#")
	if len(items) != 1 || items[0].Attrs["open"] != "0" {
		t.Fatalf("journal after relaunch = %+v, want committed (open=0)", items)
	}

	// A second crash finds nothing open: the committed entry must not be
	// replayed into a duplicate relaunch.
	sv.CrashRestart()
	restarts, replayed, _, _, _, _ = sv.Controller().RecoveryStats()
	if restarts != 2 || replayed != 1 {
		t.Fatalf("after 2nd crash: restarts=%d replayed=%d, want 2/1", restarts, replayed)
	}
	if err := deps.Engine.Run(simclock.Epoch.Add(4 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if relaunched != 1 {
		t.Fatalf("relaunched = %d after second restart, want still 1", relaunched)
	}
}

func TestCrashRestartWithoutJournalDropsPending(t *testing.T) {
	sv, _ := newSpotVerse(t, Config{Seed: 902})
	if err := sv.OnInterrupted("w1", testRegion, func(strategy.Placement) {}); err != nil {
		t.Fatal(err)
	}
	sv.CrashRestart()
	restarts, replayed, dropped, _, _, _ := sv.Controller().RecoveryStats()
	if restarts != 1 || replayed != 0 || dropped != 1 {
		t.Fatalf("restarts=%d replayed=%d dropped=%d, want 1/0/1", restarts, replayed, dropped)
	}
}

func TestJournalMarkDoneExactlyOnce(t *testing.T) {
	sv, deps := newSpotVerse(t, Config{Journal: true, Seed: 903})
	c := sv.Controller()
	p := &pendingMigration{id: "w9", region: testRegion, since: deps.Engine.Now()}
	c.jrnl.record(p)
	if v := c.jrnl.markDone(p); v != commitProceed {
		t.Fatalf("first commit verdict = %d, want commitProceed", v)
	}
	// The same migration committed again — the race a crash leaves
	// between a stale in-flight execution and a replayed entry — must
	// lose the open="1" conditional.
	if v := c.jrnl.markDone(&pendingMigration{id: "w9", region: testRegion, since: p.since}); v != commitSkip {
		t.Fatalf("second commit verdict = %d, want commitSkip", v)
	}
	// A migration the journal never saw falls back to in-memory
	// dedupe rather than refusing the relaunch outright.
	if v := c.jrnl.markDone(&pendingMigration{id: "unjournaled", region: testRegion}); v != commitProceed {
		t.Fatalf("unjournaled commit verdict = %d, want commitProceed", v)
	}
}

func TestCrashRestartReplaysBreakerState(t *testing.T) {
	sv, deps := newSpotVerse(t, Config{Journal: true, Seed: 904})
	c := sv.Controller()
	now := deps.Engine.Now()
	// Trip a breaker, snapshot lands in the journal table.
	for i := 0; i < c.cfg.BreakerFailures; i++ {
		c.noteFailure(errTestFault, now)
	}
	if !c.anyBreakerOpen(now) {
		t.Fatal("breaker did not trip")
	}
	sv.CrashRestart()
	if !c.anyBreakerOpen(now) {
		t.Fatal("tripped breaker state lost across restart")
	}
}
