// Package core implements SpotVerse, the paper's contribution: a
// multi-region spot-instance manager built from three components
// (Section 3.2).
//
//   - The Monitor periodically collects spot prices, on-demand prices,
//     Interruption Frequencies (as Stability Scores) and Spot Placement
//     Scores into DynamoDB via CloudWatch-triggered Lambda collectors.
//   - The Optimizer implements Algorithm 1: it scores regions by
//     Placement + Stability, filters by a threshold, sorts the survivors
//     by spot price, and distributes workloads round-robin across the top
//     R regions; interrupted workloads migrate to a random top-R region
//     excluding the one that failed; when no region clears the threshold
//     it falls back to the cheapest on-demand instances.
//   - The Controller reacts to EventBridge interruption events through a
//     Step Functions-retried Lambda handler and re-provisions workloads.
package core

import (
	"errors"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/cloud"
	"spotverse/internal/market"
	"spotverse/internal/services/cloudwatch"
	"spotverse/internal/services/dynamo"
	"spotverse/internal/services/eventbridge"
	"spotverse/internal/services/lambda"
	"spotverse/internal/services/s3"
	"spotverse/internal/services/stepfn"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
)

// Defaults for Config fields left zero.
const (
	DefaultThreshold    = 5
	DefaultMaxRegions   = 4
	DefaultCollectEvery = time.Hour
	// DefaultBreakerFailures is the consecutive-failure count that trips
	// a Controller circuit breaker.
	DefaultBreakerFailures = 4
	// DefaultBreakerCooldown is how long a tripped breaker stays open.
	DefaultBreakerCooldown = 30 * time.Minute
	// DefaultRecoveryAfter is how long a pending migration may sit
	// unresolved before the sweep retries it.
	DefaultRecoveryAfter = 5 * time.Minute
	// DefaultLeaseTTL is how long a controller lease lives without
	// renewal. Three sweep intervals: a healthy controller renews every
	// 15 minutes, so takeover needs a sustained outage, not one missed
	// tick.
	DefaultLeaseTTL = 3 * SweepInterval
	// DefaultControllerID is the primary incarnation's lease identity.
	DefaultControllerID = "primary"
	// MetricsTable is the DynamoDB table the Monitor writes.
	MetricsTable = "spotverse-metrics"
	// DetailTypeInterruption is the EventBridge detail-type for spot
	// interruption warnings.
	DetailTypeInterruption = "EC2 Spot Instance Interruption Warning"
	// EventSourceEC2 is the EventBridge source for EC2 events.
	EventSourceEC2 = "aws.ec2"
)

// SelectionMode controls how the threshold filters regions.
type SelectionMode int

// Selection modes.
const (
	// SelectAtLeast keeps regions whose combined score >= threshold —
	// Algorithm 1 as published.
	SelectAtLeast SelectionMode = iota + 1
	// SelectBucket keeps regions whose combined score == threshold —
	// the grouping the paper's threshold study (Table 3 / Fig. 10) uses,
	// where each threshold value maps to a disjoint region quartet.
	SelectBucket
)

// ScoringMode selects which advisor metrics feed the combined score,
// supporting the paper's Section 7 observation that other providers
// expose fewer metrics: Azure publishes interruption rates but no
// placement score, and GCP (at writing) neither.
type ScoringMode int

// Scoring modes.
const (
	// ScoreCombined is SPS + Stability — AWS, Algorithm 1 as published.
	ScoreCombined ScoringMode = iota + 1
	// ScoreStabilityOnly uses the Stability Score alone (1-3), for
	// Azure-like providers; thresholds must be on the 1-3 scale.
	ScoreStabilityOnly
	// ScorePriceOnly ignores reliability entirely (GCP-like or
	// cost-first configurations); every region passes the filter.
	ScorePriceOnly
)

// MigrationPick selects how the interruption handler chooses among the
// top-R candidate regions.
type MigrationPick int

// Migration policies.
const (
	// PickRandom chooses uniformly among the top R — Algorithm 1 as
	// published (it spreads migrating workloads instead of dogpiling the
	// single cheapest region).
	PickRandom MigrationPick = iota + 1
	// PickCheapest always chooses the cheapest qualifying region; the
	// ablation bench measures what the randomisation buys.
	PickCheapest
)

// Errors returned by the package.
var (
	ErrNoMetrics = errors.New("core: no metrics collected for instance type")
	ErrNoRegions = errors.New("core: no candidate regions")
)

// Config parameterises a SpotVerse deployment.
type Config struct {
	// InstanceType is the instance type being managed.
	InstanceType catalog.InstanceType
	// Threshold is Algorithm 1's combined-score threshold T.
	Threshold int
	// MaxRegions is Algorithm 1's R (the paper uses 4).
	MaxRegions int
	// Selection picks the threshold semantics (default SelectAtLeast).
	Selection SelectionMode
	// Scoring picks the metric set (default ScoreCombined; see
	// ScoringMode for the Azure/GCP-style degradations).
	Scoring ScoringMode
	// DisableOnDemandFallback turns off the cheapest-on-demand escape
	// hatch used when no region clears the threshold (Section 3.3); the
	// ablation bench flips it.
	DisableOnDemandFallback bool
	// FixedStartRegion, when set, overrides the initial-distribution
	// strategy and starts every workload there (the paper's Fig. 7 setup
	// for fair comparison against the single-region baseline).
	FixedStartRegion catalog.Region
	// Migration picks the interruption-handler policy (default
	// PickRandom, Algorithm 1).
	Migration MigrationPick
	// CollectEvery is the Monitor's collection period.
	CollectEvery time.Duration
	// Seed feeds the random migration pick.
	Seed int64

	// BreakerFailures is the consecutive-failure count that trips a
	// per-(service, region) circuit breaker in the Controller (default
	// DefaultBreakerFailures).
	BreakerFailures int
	// BreakerCooldown is how long a tripped breaker stays open before a
	// trial retry is allowed through (default DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// RecoveryAfter is how long a pending migration may sit unresolved
	// before the 15-minute sweep retries it; it is also the base of the
	// retry backoff (default DefaultRecoveryAfter).
	RecoveryAfter time.Duration
	// DisableRecovery turns off the notice-loss recovery sweep — the
	// ablation that shows what the sweep buys under dropped EventBridge
	// deliveries.
	DisableRecovery bool
	// DisableBreakers turns off the Controller's circuit breakers.
	DisableBreakers bool
	// StaleAfter, when positive, discounts a region's combined score by
	// one point per StaleAfter of advisor-snapshot age beyond the first
	// StaleAfter — the degraded-mode Optimizer trusting old data less.
	StaleAfter time.Duration
	// StaleCutoff, when positive, excludes regions whose advisor snapshot
	// is older than the cutoff entirely; when every region ages out the
	// Optimizer falls back to cheapest on-demand.
	StaleCutoff time.Duration
	// Journal enables the Controller's DynamoDB write-ahead journal:
	// pending-migration transitions are persisted before in-memory
	// mutations, relaunches commit through a conditional write, and
	// CrashRestart rebuilds controller state by replay. Off by default —
	// the journal's ledger writes change run costs, so existing
	// experiments stay byte-identical unless a deployment opts in.
	Journal bool
	// Lease enables the Controller's lease-fenced commit path (requires
	// Journal): the Controller holds a lease item in the journal table
	// with a monotonically increasing fencing token, acquired and
	// renewed through conditional writes, and every relaunch commit
	// first proves tokenship with a conditional renew — so a deposed
	// incarnation (a split-brain rival, or a primary that lost its lease
	// during a partition) has its relaunches rejected instead of
	// duplicated. Off by default: the lease's reads and writes change
	// run costs, so existing experiments stay byte-identical.
	Lease bool
	// ControllerID names this Controller incarnation as the lease
	// holder (default "primary"). Rival incarnations (split-brain
	// harnesses) must use distinct IDs.
	ControllerID string
	// LeaseTTL is how long a held lease lives without renewal before a
	// rival may take over, bumping the fencing token (default
	// DefaultLeaseTTL). Renewals ride the sweep and every commit.
	LeaseTTL time.Duration
	// DisableFencing is a test hook: the lease is still acquired and
	// renewed, but the commit path skips the fencing check and restores
	// the proceed-on-unreachable-journal behaviour — the exact hole the
	// fencing closes. The fault-space fuzzer uses it as the deliberately
	// broken build its split-brain invariant must catch.
	DisableFencing bool
	// BreakerObserver, when set, is called on every circuit-breaker
	// state transition with "<controllerID>/<breakerKey>", the state
	// names before and after, and the cumulative trip count — the feed
	// for the fuzzer's breaker-monotonicity invariant. On a crash-restart
	// it is called once with key "<controllerID>/" and states
	// "restart"/"restart" so observers can segment that incarnation's
	// per-key sequences across journal-replay state resets.
	BreakerObserver func(key, from, to string, trips int)
}

func (c Config) normalized() Config {
	if c.Threshold == 0 {
		c.Threshold = DefaultThreshold
	}
	if c.MaxRegions <= 0 {
		c.MaxRegions = DefaultMaxRegions
	}
	if c.Selection == 0 {
		c.Selection = SelectAtLeast
	}
	if c.Migration == 0 {
		c.Migration = PickRandom
	}
	if c.Scoring == 0 {
		c.Scoring = ScoreCombined
	}
	if c.CollectEvery <= 0 {
		c.CollectEvery = DefaultCollectEvery
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = DefaultBreakerFailures
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.RecoveryAfter <= 0 {
		c.RecoveryAfter = DefaultRecoveryAfter
	}
	if c.ControllerID == "" {
		c.ControllerID = DefaultControllerID
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = DefaultLeaseTTL
	}
	return c
}

// Deps are the cloud services SpotVerse runs on.
type Deps struct {
	Engine     *simclock.Engine
	Market     *market.Model
	Provider   *cloud.Provider
	Dynamo     *dynamo.Store
	Lambda     *lambda.Runtime
	Bus        *eventbridge.Bus
	CloudWatch *cloudwatch.Service
	StepFn     *stepfn.Machine
	// S3 is optional; the CloudFormation deployment path (deploy.go)
	// provisions the activity-log bucket onto it when present.
	S3 *s3.Store
}

func (d Deps) validate() error {
	switch {
	case d.Engine == nil, d.Market == nil, d.Provider == nil, d.Dynamo == nil,
		d.Lambda == nil, d.Bus == nil, d.CloudWatch == nil, d.StepFn == nil:
		return errors.New("core: all dependencies are required")
	}
	return nil
}

// SpotVerse bundles Monitor, Optimizer, and Controller. It implements
// strategy.Strategy.
type SpotVerse struct {
	cfg  Config
	deps Deps
	rng  *simclock.RNG

	monitor    *Monitor
	optimizer  *Optimizer
	controller *Controller
}

var _ strategy.Strategy = (*SpotVerse)(nil)

// New deploys SpotVerse: it creates the metrics table, registers the
// Lambda functions, schedules the Monitor's collectors and the
// Controller's 15-minute open-request sweep, and subscribes the
// interruption handler to EventBridge.
func New(cfg Config, deps Deps) (*SpotVerse, error) {
	if err := deps.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	if cfg.Lease && !cfg.Journal {
		return nil, errors.New("core: Config.Lease requires Config.Journal (the lease lives in the journal table)")
	}
	if _, err := deps.Market.Catalog().Spec(cfg.InstanceType); err != nil {
		return nil, err
	}
	sv := &SpotVerse{
		cfg:  cfg,
		deps: deps,
		rng:  simclock.Stream(cfg.Seed, "spotverse/"+string(cfg.InstanceType)),
	}
	mon, err := newMonitor(cfg, deps)
	if err != nil {
		return nil, err
	}
	sv.monitor = mon
	sv.optimizer = newOptimizer(cfg, deps, mon, sv.rng)
	ctl, err := newController(cfg, deps, sv.optimizer, "", false)
	if err != nil {
		return nil, err
	}
	sv.controller = ctl
	return sv, nil
}

// NewRival deploys a second, split-brain Controller incarnation against
// the same dependencies: a network-partitioned ex-primary that still
// believes it is in charge, or an over-eager failover replacement. The
// rival shares the primary's Optimizer, journal table, and lease item
// but namespaces its AWS-side resources (handler Lambda, EventBridge
// rule, sweep schedule) under id, subscribes to the same interruption
// events, and races the primary for every relaunch commit — the fencing
// lease (Config.Lease) is what keeps that race exactly-once. The rival
// inherits the primary's relaunch resolver and replays the journal's
// open entries so it starts with the same view of pending work. Retire
// it with its Stop method.
func (sv *SpotVerse) NewRival(id string) (*Controller, error) {
	if id == "" || id == sv.cfg.ControllerID {
		return nil, errors.New("core: rival needs a distinct non-empty ControllerID")
	}
	cfg := sv.cfg
	cfg.ControllerID = id
	rival, err := newController(cfg, sv.deps, sv.optimizer, "-"+id, true)
	if err != nil {
		return nil, err
	}
	rival.resolver = sv.controller.resolver
	if rival.jrnl != nil {
		pend, brks := rival.jrnl.replay()
		for wid, p := range pend {
			if rival.resolver != nil {
				p.relaunch = rival.resolver(wid)
			}
			rival.pending[wid] = p
		}
		rival.breakers = brks
	}
	return rival, nil
}

// Name implements strategy.Strategy.
func (sv *SpotVerse) Name() string { return "spotverse" }

// Monitor exposes the monitor component.
func (sv *SpotVerse) Monitor() *Monitor { return sv.monitor }

// Optimizer exposes the optimizer component.
func (sv *SpotVerse) Optimizer() *Optimizer { return sv.optimizer }

// Controller exposes the controller component.
func (sv *SpotVerse) Controller() *Controller { return sv.controller }

// PlaceInitial implements Algorithm 1's initialization phase.
func (sv *SpotVerse) PlaceInitial(ids []string) (map[string]strategy.Placement, error) {
	out := make(map[string]strategy.Placement, len(ids))
	if sv.cfg.FixedStartRegion != "" {
		for _, id := range ids {
			out[id] = strategy.Placement{Region: sv.cfg.FixedStartRegion, Lifecycle: cloud.LifecycleSpot}
		}
		return out, nil
	}
	top, err := sv.optimizer.TopRegions(nil)
	if err != nil {
		return nil, err
	}
	if len(top) == 0 {
		od, err := sv.optimizer.CheapestOnDemand()
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			out[id] = strategy.Placement{Region: od, Lifecycle: cloud.LifecycleOnDemand}
		}
		return out, nil
	}
	for i, id := range ids {
		out[id] = strategy.Placement{Region: top[i%len(top)], Lifecycle: cloud.LifecycleSpot}
	}
	return out, nil
}

// OnInterrupted implements Algorithm 1's interruption phase, routed
// through the Controller's EventBridge → Step Functions → Lambda path as
// in the paper's AWS implementation.
func (sv *SpotVerse) OnInterrupted(id string, current catalog.Region, relaunch strategy.RelaunchFunc) error {
	return sv.controller.HandleInterruption(id, current, relaunch)
}

// CrashRestart models the whole control-plane process dying and
// cold-starting at the current sim instant: the Controller loses its
// in-memory registries (and recovers them from the journal when
// Config.Journal is on) and the Monitor loses its snapshot cache. The
// AWS-side actors — Lambda registrations, EventBridge rules, CloudWatch
// schedules, DynamoDB and S3 contents — survive, as they do in
// production.
func (sv *SpotVerse) CrashRestart() {
	sv.controller.CrashRestart()
	sv.monitor.crash()
}

// SetRelaunchResolver installs the factory the Controller uses to
// rebuild relaunch closures for journal-replayed migrations after a
// crash-restart (closures cannot be persisted).
func (sv *SpotVerse) SetRelaunchResolver(fn func(id string) strategy.RelaunchFunc) {
	sv.controller.SetRelaunchResolver(fn)
}
