package core

import "time"

// breakerState is a circuit breaker's lifecycle position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-(service, region) circuit breaker for the Controller's
// migration path. Consecutive failures attributed to one key trip it
// open; while open, migration executions are deferred to a later sweep
// instead of burning Step Functions retries against a browned-out
// dependency. After the cooldown the breaker half-opens and lets a trial
// execution through: success closes it, another failure re-trips.
type breaker struct {
	threshold int
	cooldown  time.Duration

	state       breakerState
	consecutive int
	openedAt    time.Time
	trips       int
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a call may proceed, moving an open breaker to
// half-open once its cooldown has elapsed.
func (b *breaker) allow(now time.Time) bool {
	if b.state == breakerOpen {
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
	}
	return true
}

// failure records one failed call: a half-open breaker re-trips
// immediately, a closed one trips at the consecutive-failure threshold.
func (b *breaker) failure(now time.Time) {
	b.consecutive++
	if b.state == breakerHalfOpen || b.consecutive >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
		b.consecutive = 0
		b.trips++
	}
}

// success closes the breaker and clears the failure streak.
func (b *breaker) success() {
	b.state = breakerClosed
	b.consecutive = 0
}
