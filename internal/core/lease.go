package core

import (
	"errors"
	"strconv"
	"time"

	"spotverse/internal/services/dynamo"
)

// leaseKey is the single lease item in the journal table. One lease
// guards the whole control plane: whoever holds it is the incarnation
// allowed to commit relaunches.
const leaseKey = "lease#controller"

// lease is the Controller's fencing lease, stored in the DynamoDB
// journal table. The item carries the holder's ID, a monotonically
// increasing fencing token, and an expiry instant:
//
//   - acquire: a conditional insert (PutIfAbsent) creates the item at
//     token 1; an expired item is taken over with a conditional write
//     on (holder, token) that bumps the token.
//   - renew: a conditional write on (holder, token) extends the expiry
//     without changing the token.
//   - commitCheck: a renew issued at the commit point — success proves
//     this incarnation still owns the fencing token at the instant of
//     the relaunch commit; a ConditionFailed means it was deposed and
//     the commit must be refused.
//
// Every step is fail-safe under injected faults: if the journal cannot
// be reached, the lease is treated as not held and commits are refused
// rather than risked — a later sweep retries once the journal heals.
type lease struct {
	deps   Deps
	holder string
	ttl    time.Duration

	held  bool
	token int

	acquires  int
	renewals  int
	takeovers int
	fenced    int
	lost      int
}

func newLease(cfg Config, deps Deps) *lease {
	return &lease{deps: deps, holder: cfg.ControllerID, ttl: cfg.LeaseTTL}
}

func (l *lease) item(expires time.Time, token int) dynamo.Item {
	return dynamo.Item{
		Key: leaseKey,
		Attrs: map[string]string{
			"holder":  l.holder,
			"token":   strconv.Itoa(token),
			"expires": expires.Format(time.RFC3339Nano),
		},
	}
}

// conds is the fencing condition: the stored lease must still name this
// holder at this token.
func (l *lease) conds() map[string]string {
	return map[string]string{"holder": l.holder, "token": strconv.Itoa(l.token)}
}

// read fetches the current lease item with bounded retries. A nil item
// pointer with nil error means the item does not exist yet.
func (l *lease) read() (*dynamo.Item, error) {
	var it dynamo.Item
	var err error
	for i := 0; i < journalRetries; i++ {
		it, err = l.deps.Dynamo.Get(JournalTable, leaseKey)
		if err == nil || errors.Is(err, dynamo.ErrItemNotFound) {
			break
		}
	}
	if errors.Is(err, dynamo.ErrItemNotFound) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return &it, nil
}

// ensure makes this incarnation the lease holder if it can: fresh
// acquire when no lease exists, renew when already holding, takeover
// when the current holder's lease has expired. It reports whether the
// lease is held afterwards. Unreachable journal → not held (fail safe).
func (l *lease) ensure(now time.Time) bool {
	cur, err := l.read()
	if err != nil {
		l.lost++
		l.held = false
		return false
	}
	expires := now.Add(l.ttl)
	if cur == nil {
		// No lease yet: race for the first token.
		err := l.deps.Dynamo.PutIfAbsent(JournalTable, l.item(expires, 1))
		if errors.Is(err, dynamo.ErrConditionFailed) {
			l.held = false
			return false
		}
		if err != nil {
			l.lost++
			l.held = false
			return false
		}
		l.token = 1
		l.held = true
		l.acquires++
		return true
	}
	curToken, _ := strconv.Atoi(cur.Attrs["token"])
	curExpiry, _ := time.Parse(time.RFC3339Nano, cur.Attrs["expires"])
	if cur.Attrs["holder"] == l.holder {
		// Our lease (possibly from a previous incarnation of the same
		// ID): renew at the stored token, conditional on it not having
		// moved under us.
		it := l.item(expires, curToken)
		err := l.deps.Dynamo.UpdateIfAll(JournalTable, it,
			map[string]string{"holder": l.holder, "token": cur.Attrs["token"]})
		if err != nil {
			if !errors.Is(err, dynamo.ErrConditionFailed) {
				l.lost++
			}
			l.held = false
			return false
		}
		l.token = curToken
		l.held = true
		l.renewals++
		return true
	}
	if curExpiry.After(now) {
		// Someone else holds a live lease.
		l.held = false
		return false
	}
	// Expired foreign lease: take over, bumping the fencing token so the
	// deposed holder's conditional writes at the old token lose.
	next := l.item(expires, curToken+1)
	err = l.deps.Dynamo.UpdateIfAll(JournalTable, next,
		map[string]string{"holder": cur.Attrs["holder"], "token": cur.Attrs["token"]})
	if err != nil {
		if !errors.Is(err, dynamo.ErrConditionFailed) {
			l.lost++
		}
		l.held = false
		return false
	}
	l.token = curToken + 1
	l.held = true
	l.takeovers++
	return true
}

// commitCheck is the fencing gate consulted before every relaunch
// commit: a conditional renew on (holder, token) that only the live
// fencing-token owner can win. Refusals are counted as fenced; an
// unreachable journal refuses too (fail safe — the sweep retries).
func (l *lease) commitCheck(now time.Time) bool {
	if !l.held && !l.ensure(now) {
		l.fenced++
		return false
	}
	err := l.deps.Dynamo.UpdateIfAll(JournalTable, l.item(now.Add(l.ttl), l.token), l.conds())
	if err == nil {
		l.renewals++
		return true
	}
	if errors.Is(err, dynamo.ErrConditionFailed) {
		// Deposed: a rival took over and bumped the token.
		l.held = false
	} else {
		l.lost++
	}
	l.fenced++
	return false
}
