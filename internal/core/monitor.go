package core

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/market"
	"spotverse/internal/services/dynamo"
)

// Monitor is SpotVerse's metric-collection component. A CloudWatch rule
// triggers a Lambda collector that snapshots the Spot Instance Advisor
// surface — spot and on-demand prices, Interruption Frequency (surfaced
// as a Stability Score) and Spot Placement Score per region — into a
// DynamoDB table the Optimizer reads. This mirrors the paper's
// SpotInfo-on-Lambda pipeline.
type Monitor struct {
	cfg  Config
	deps Deps

	collections int
	lastGood    []AgedEntry
	ticker      interface{ Stop() }
}

// CollectorFunction is the Lambda the Monitor's CloudWatch rule invokes;
// exported so fault schedules can target it (starving the Optimizer of
// fresh advisor data).
const CollectorFunction = "spotverse-metrics-collector"

func newMonitor(cfg Config, deps Deps) (*Monitor, error) {
	m := &Monitor{cfg: cfg, deps: deps}
	// The table may already exist when the deployment went through the
	// CloudFormation path (deploy.go).
	if err := deps.Dynamo.CreateTable(MetricsTable); err != nil && !errors.Is(err, dynamo.ErrTableExists) {
		return nil, fmt.Errorf("monitor: %w", err)
	}
	_, err := deps.Lambda.Register(CollectorFunction, 128, 15*time.Minute, 3*time.Second,
		func(any) error { return m.collect() })
	if err != nil {
		return nil, fmt.Errorf("monitor: %w", err)
	}
	if err := deps.CloudWatch.Schedule("metrics-collection", cfg.CollectEvery, func(time.Time) {
		// Errors inside the collector are surfaced through the Lambda
		// runtime's failure counters; collection is best-effort.
		_ = deps.Lambda.Invoke(CollectorFunction, nil, nil)
	}); err != nil {
		return nil, fmt.Errorf("monitor: %w", err)
	}
	return m, nil
}

func metricsKey(t catalog.InstanceType, r catalog.Region) string {
	return string(t) + "#" + string(r)
}

// collect snapshots the advisor into DynamoDB (runs inside the Lambda).
func (m *Monitor) collect() error {
	rows, err := m.deps.Market.AdvisorSnapshot(m.cfg.InstanceType, m.deps.Engine.Now())
	if err != nil {
		return fmt.Errorf("monitor collect: %w", err)
	}
	for _, row := range rows {
		item := dynamo.Item{
			Key: metricsKey(row.Type, row.Region),
			Attrs: map[string]string{
				"region":    string(row.Region),
				"type":      string(row.Type),
				"spot":      strconv.FormatFloat(row.SpotPriceUSD, 'g', -1, 64),
				"ondemand":  strconv.FormatFloat(row.OnDemandUSD, 'g', -1, 64),
				"frequency": strconv.FormatFloat(row.InterruptionFrequency, 'g', -1, 64),
				"stability": strconv.Itoa(row.StabilityScore),
				"sps":       strconv.Itoa(row.PlacementScore),
				"collected": m.deps.Engine.Now().Format(time.RFC3339),
			},
		}
		if err := m.deps.Dynamo.Put(MetricsTable, item); err != nil {
			return fmt.Errorf("monitor collect: %w", err)
		}
	}
	m.collections++
	m.deps.CloudWatch.PutMetric("spotverse.collections", float64(m.collections))
	return nil
}

// CollectNow forces a synchronous collection (used before the first
// scheduled tick).
func (m *Monitor) CollectNow() error { return m.collect() }

// crash drops the Monitor's in-memory state on a control-plane restart:
// the degraded-mode cache is gone and the collection count resets, so
// the next LatestAged call re-collects before trusting DynamoDB — a
// cold cache, exactly what a restarted process would have.
func (m *Monitor) crash() {
	m.collections = 0
	m.lastGood = nil
}

// Collections reports how many snapshots have been stored.
func (m *Monitor) Collections() int { return m.collections }

// AgedEntry pairs an advisor entry with the instant its snapshot was
// collected, letting the Optimizer discount or discard stale data.
type AgedEntry struct {
	market.AdvisorEntry
	CollectedAt time.Time
}

// LatestAged reads the most recent advisor snapshot for the configured
// instance type back out of DynamoDB, with collection timestamps. If
// nothing has been collected yet it synchronously collects first, so the
// Optimizer never starts blind. In degraded mode — DynamoDB unreachable
// — it serves the last successfully read snapshot instead of failing, so
// a control-plane brownout cannot blind an Optimizer that has ever seen
// data.
func (m *Monitor) LatestAged() ([]AgedEntry, error) {
	if m.collections == 0 {
		if err := m.collect(); err != nil && len(m.lastGood) == 0 {
			// First-ever collection failed with nothing cached: the Scan
			// below may still find rows written by an earlier deployment,
			// so only the Scan outcome is authoritative.
			_ = err
		}
	}
	items, err := m.deps.Dynamo.Scan(MetricsTable, string(m.cfg.InstanceType)+"#")
	if err != nil {
		if len(m.lastGood) > 0 {
			return m.lastGood, nil
		}
		return nil, fmt.Errorf("monitor latest: %w", err)
	}
	if len(items) == 0 {
		if len(m.lastGood) > 0 {
			return m.lastGood, nil
		}
		return nil, fmt.Errorf("%w: %s", ErrNoMetrics, m.cfg.InstanceType)
	}
	out := make([]AgedEntry, 0, len(items))
	for _, it := range items {
		e, err := entryFromItem(it)
		if err != nil {
			return nil, fmt.Errorf("monitor latest: %w", err)
		}
		// A missing or malformed timestamp parses to the zero time, i.e.
		// infinitely stale — the conservative reading.
		collected, _ := time.Parse(time.RFC3339, it.Attrs["collected"])
		out = append(out, AgedEntry{AdvisorEntry: e, CollectedAt: collected})
	}
	m.lastGood = out
	return out, nil
}

// Latest is LatestAged without the timestamps.
func (m *Monitor) Latest() ([]market.AdvisorEntry, error) {
	aged, err := m.LatestAged()
	if err != nil {
		return nil, err
	}
	out := make([]market.AdvisorEntry, len(aged))
	for i, e := range aged {
		out[i] = e.AdvisorEntry
	}
	return out, nil
}

func entryFromItem(it dynamo.Item) (market.AdvisorEntry, error) {
	spot, err := strconv.ParseFloat(it.Attrs["spot"], 64)
	if err != nil {
		return market.AdvisorEntry{}, fmt.Errorf("item %s spot: %w", it.Key, err)
	}
	od, err := strconv.ParseFloat(it.Attrs["ondemand"], 64)
	if err != nil {
		return market.AdvisorEntry{}, fmt.Errorf("item %s ondemand: %w", it.Key, err)
	}
	freq, err := strconv.ParseFloat(it.Attrs["frequency"], 64)
	if err != nil {
		return market.AdvisorEntry{}, fmt.Errorf("item %s frequency: %w", it.Key, err)
	}
	stability, err := strconv.Atoi(it.Attrs["stability"])
	if err != nil {
		return market.AdvisorEntry{}, fmt.Errorf("item %s stability: %w", it.Key, err)
	}
	sps, err := strconv.Atoi(it.Attrs["sps"])
	if err != nil {
		return market.AdvisorEntry{}, fmt.Errorf("item %s sps: %w", it.Key, err)
	}
	return market.AdvisorEntry{
		Region:                catalog.Region(it.Attrs["region"]),
		Type:                  catalog.InstanceType(it.Attrs["type"]),
		SpotPriceUSD:          spot,
		OnDemandUSD:           od,
		SavingsOverOnDemand:   1 - spot/od,
		InterruptionFrequency: freq,
		StabilityScore:        stability,
		PlacementScore:        sps,
		CombinedScore:         stability + sps,
	}, nil
}
