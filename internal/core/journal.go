package core

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/services/dynamo"
)

// JournalTable is the DynamoDB table backing the Controller's
// write-ahead journal: `jrnl#<workload>` items for pending-migration
// transitions and `brk#<service@region>` items for breaker snapshots.
const JournalTable = "spotverse-journal"

// Journal entry statuses, in lifecycle order. An entry is live while its
// "open" attribute is "1"; the relaunched transition closes it.
const (
	journalRecorded   = "recorded"
	journalPublished  = "published"
	journalRelaunched = "relaunched"
	journalFailed     = "failed"
)

const (
	journalPrefix = "jrnl#"
	breakerPrefix = "brk#"
	// journalRetries bounds the re-read/re-write attempts around a
	// transient fault on the commit path. DynamoDB faults inject before
	// any mutation, so a retry never double-applies.
	journalRetries = 3
)

// journal is the Controller's write-ahead log. Every pending-migration
// transition is persisted before the in-memory registry mutates, so a
// cold-started Controller can rebuild its state by replaying the open
// entries; the relaunched transition is a conditional write on the
// "open" attribute, which is what makes relaunches exactly-once across
// crash-restarts (two incarnations racing the same migration cannot
// both win the condition).
//
// Journal writes are best-effort under injected faults: a lost write
// degrades recovery for that one entry (the crash-restart rescan of the
// provider is the backstop) but never blocks the live migration path.
type journal struct {
	cfg  Config
	deps Deps

	// fence is the controller's lease when Config.Lease is on (nil
	// otherwise): markDone proves fencing-token ownership through it
	// before committing, and an unreachable journal refuses the commit
	// instead of proceeding blind. Config.DisableFencing bypasses both
	// checks — the deliberately broken build the fuzzer must catch.
	fence *lease

	writes    int
	lost      int // journal writes abandoned to injected faults
	skips     int // relaunches refused by the conditional commit
	deferrals int // commits deferred by fencing or an unreachable journal
}

func newJournal(cfg Config, deps Deps) (*journal, error) {
	if err := deps.Dynamo.CreateTable(JournalTable); err != nil && !errors.Is(err, dynamo.ErrTableExists) {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &journal{cfg: cfg, deps: deps}, nil
}

func (j *journal) note(err error) {
	if err != nil {
		j.lost++
		return
	}
	j.writes++
}

func journalItem(p *pendingMigration, status string) dynamo.Item {
	open := "1"
	if status == journalRelaunched {
		open = "0"
	}
	return dynamo.Item{
		Key: journalPrefix + p.id,
		Attrs: map[string]string{
			"id":       p.id,
			"region":   string(p.region),
			"status":   status,
			"open":     open,
			"since":    p.since.Format(time.RFC3339Nano),
			"attempts": strconv.Itoa(p.attempts),
			"nextTry":  p.nextTry.Format(time.RFC3339Nano),
		},
	}
}

// record persists a fresh interruption before the in-memory registry
// learns of it. A conditional insert covers the common case; when the
// key exists — a re-interruption of a live entry, or a new interruption
// of a workload whose previous entry closed — this interruption
// supersedes it unconditionally.
func (j *journal) record(p *pendingMigration) {
	it := journalItem(p, journalRecorded)
	err := j.deps.Dynamo.PutIfAbsent(JournalTable, it)
	if errors.Is(err, dynamo.ErrConditionFailed) {
		err = j.deps.Dynamo.Put(JournalTable, it)
	}
	j.note(err)
}

// update persists a status transition on a live entry, conditional on
// it still being open; a closed or never-recorded entry has nothing to
// transition.
func (j *journal) update(p *pendingMigration, status string) {
	err := j.deps.Dynamo.UpdateIf(JournalTable, journalItem(p, status), "open", "1")
	if errors.Is(err, dynamo.ErrConditionFailed) {
		return
	}
	j.note(err)
}

// fencing reports whether the lease-fenced commit path is active.
func (j *journal) fencing() bool {
	return j.fence != nil && !j.cfg.DisableFencing
}

// commitVerdict is markDone's three-way outcome.
type commitVerdict int

const (
	// commitProceed: the entry is closed under this incarnation's
	// fencing token (or the unfenced fallback applies) — actuate.
	commitProceed commitVerdict = iota
	// commitSkip: another incarnation already relaunched this migration
	// — close the local entry without actuating.
	commitSkip
	// commitDefer: exactly-once could not be proved (this incarnation is
	// fenced out, or the journal is unreachable in fenced mode) — keep
	// the entry pending and let a later sweep retry.
	commitDefer
)

// markDone is the exactly-once commit point consulted before a relaunch
// actuates. It closes the entry with a conditional write on open="1";
// losing the condition means another incarnation of the Controller
// already relaunched this migration, so the caller must not. A missing
// entry (its record write was lost to a fault) falls back to the
// caller's in-memory dedupe and proceeds.
//
// Without a lease, an unreachable journal proceeds — an availability
// choice that is safe with a single incarnation (the in-memory done
// flag dedupes) but is exactly the split-brain hole: two incarnations
// that both cannot read the journal both proceed. With the lease on,
// the commit first proves fencing-token ownership through the lease's
// conditional renew, and any residual journal unreachability defers the
// commit — the entry stays pending and a later sweep retries once the
// journal heals.
func (j *journal) markDone(p *pendingMigration) commitVerdict {
	if j.fencing() && !j.fence.commitCheck(j.deps.Engine.Now()) {
		j.deferrals++
		return commitDefer
	}
	var err error
	var cur dynamo.Item
	for i := 0; i < journalRetries; i++ {
		cur, err = j.deps.Dynamo.Get(JournalTable, journalPrefix+p.id)
		if err == nil || errors.Is(err, dynamo.ErrItemNotFound) {
			break
		}
	}
	if errors.Is(err, dynamo.ErrItemNotFound) {
		return commitProceed
	}
	if err == nil && cur.Attrs["open"] != "1" {
		j.skips++
		return commitSkip
	}
	if err != nil && j.fencing() {
		// Fenced mode never commits blind: the read never succeeded, so
		// this incarnation cannot know whether the entry is still open.
		j.lost++
		j.deferrals++
		return commitDefer
	}
	it := journalItem(p, journalRelaunched)
	for i := 0; i < journalRetries; i++ {
		err = j.deps.Dynamo.UpdateIf(JournalTable, it, "open", "1")
		if err == nil || errors.Is(err, dynamo.ErrConditionFailed) {
			break
		}
	}
	if errors.Is(err, dynamo.ErrConditionFailed) {
		j.skips++
		return commitSkip
	}
	if err != nil && j.fencing() {
		// The conditional close itself never landed: defer rather than
		// actuate a relaunch the journal cannot prove exactly-once.
		j.lost++
		j.deferrals++
		return commitDefer
	}
	j.note(err)
	return commitProceed
}

func breakerItem(key string, b *breaker) dynamo.Item {
	return dynamo.Item{
		Key: breakerPrefix + key,
		Attrs: map[string]string{
			"state":       strconv.Itoa(int(b.state)),
			"consecutive": strconv.Itoa(b.consecutive),
			"openedAt":    b.openedAt.Format(time.RFC3339Nano),
			"trips":       strconv.Itoa(b.trips),
		},
	}
}

// snapshotBreaker persists one breaker's current state so a replayed
// Controller honours cooldowns opened before the crash.
func (j *journal) snapshotBreaker(key string, b *breaker) {
	j.note(j.deps.Dynamo.Put(JournalTable, breakerItem(key, b)))
}

// replay scans the journal and rebuilds the open pending-migration set
// and the breaker registry for a cold-started Controller. Relaunch
// closures cannot be journaled; the caller reattaches them via its
// relaunch resolver.
func (j *journal) replay() (pending map[string]*pendingMigration, breakers map[string]*breaker) {
	pending = make(map[string]*pendingMigration)
	breakers = make(map[string]*breaker)
	items, err := j.deps.Dynamo.Scan(JournalTable, journalPrefix)
	if err == nil {
		for _, it := range items {
			if it.Attrs["open"] != "1" {
				continue
			}
			since, _ := time.Parse(time.RFC3339Nano, it.Attrs["since"])
			nextTry, _ := time.Parse(time.RFC3339Nano, it.Attrs["nextTry"])
			attempts, _ := strconv.Atoi(it.Attrs["attempts"])
			id := it.Attrs["id"]
			pending[id] = &pendingMigration{
				id:       id,
				region:   catalog.Region(it.Attrs["region"]),
				since:    since,
				attempts: attempts,
				nextTry:  nextTry,
			}
		}
	}
	bitems, err := j.deps.Dynamo.Scan(JournalTable, breakerPrefix)
	if err == nil {
		for _, it := range bitems {
			b := newBreaker(j.cfg.BreakerFailures, j.cfg.BreakerCooldown)
			st, _ := strconv.Atoi(it.Attrs["state"])
			b.state = breakerState(st)
			b.consecutive, _ = strconv.Atoi(it.Attrs["consecutive"])
			b.openedAt, _ = time.Parse(time.RFC3339Nano, it.Attrs["openedAt"])
			b.trips, _ = strconv.Atoi(it.Attrs["trips"])
			breakers[it.Key[len(breakerPrefix):]] = b
		}
	}
	return pending, breakers
}
