package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/chaos"
	"spotverse/internal/services/eventbridge"
	"spotverse/internal/services/lambda"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
)

// Controller is SpotVerse's actuation component. Interruption handling
// follows the paper's AWS wiring: the interruption warning is published
// to EventBridge, a rule routes it into a Step Functions execution that
// retries the interruption-handler Lambda, and the handler asks the
// Optimizer for a migration target and re-provisions the workload. A
// CloudWatch rule sweeps open spot requests every 15 minutes.
//
// The Controller is hardened against a faulty control plane: every
// interruption is recorded in a pending-migration registry before the
// (droppable) EventBridge publish, so the sweep can recover migrations
// whose notice was lost or whose handler chain exhausted its retries;
// retry timing uses jittered exponential backoff; and per-(service,
// region) circuit breakers defer executions while a dependency is
// browned out rather than burning attempts into it.
//
// With Config.Journal set it is additionally hardened against its own
// death: every pending-migration transition is write-ahead journaled to
// DynamoDB before the in-memory mutation, relaunches commit through a
// conditional write (exactly-once across restarts), and CrashRestart
// rebuilds the registry and breakers by replaying the journal and
// rescanning the provider.
type Controller struct {
	cfg  Config
	deps Deps
	opt  *Optimizer
	rng  *simclock.RNG

	handled  int
	failures int
	sweeps   int

	pending      map[string]*pendingMigration
	breakers     map[string]*breaker
	recoveries   int
	breakerSkips int

	jrnl     *journal
	lease    *lease
	resolver func(id string) strategy.RelaunchFunc

	// fn is this incarnation's handler Lambda name; rival incarnations
	// namespace it (Lambda rejects duplicate registrations).
	fn string
	// rival marks a split-brain incarnation: it adopts interruption
	// events into its own pending copies instead of sharing the
	// primary's, and never re-records entries the primary journaled.
	rival bool
	// stopped gates every entry point once the incarnation is retired;
	// CloudWatch has no per-schedule stop, so the sweep checks it too.
	stopped bool

	restarts    int
	replayed    int
	killDropped int
	restartAt   time.Time
	recoverySet map[string]bool
	recoveryDur time.Duration
}

const (
	handlerFunction = "spotverse-interruption-handler"
	// SweepInterval is the paper's periodic open-request check; the
	// hardened Controller piggybacks its pending-migration recovery pass
	// on the same rule.
	SweepInterval = 15 * time.Minute
	// maxRetryDelay caps the exponential recovery backoff.
	maxRetryDelay = time.Hour
)

// pendingMigration is one interrupted workload awaiting re-provisioning.
// It is recorded before the EventBridge publish — ground truth that
// survives a dropped delivery — and doubles as the event payload.
type pendingMigration struct {
	id       string
	region   catalog.Region
	relaunch strategy.RelaunchFunc
	since    time.Time
	attempts int
	nextTry  time.Time
	inflight bool
	done     bool
}

// newController deploys one Controller incarnation. suffix namespaces
// its AWS-side resources (handler Lambda, EventBridge rule, sweep
// schedule) so a rival incarnation can coexist with the primary; the
// primary uses the empty suffix and the exact historical names.
func newController(cfg Config, deps Deps, opt *Optimizer, suffix string, rival bool) (*Controller, error) {
	c := &Controller{
		cfg:      cfg,
		deps:     deps,
		opt:      opt,
		rng:      simclock.Stream(cfg.Seed, "spotverse/controller"+suffix),
		pending:  make(map[string]*pendingMigration),
		breakers: make(map[string]*breaker),
		fn:       handlerFunction + suffix,
		rival:    rival,
	}
	if cfg.Journal {
		jr, err := newJournal(cfg, deps)
		if err != nil {
			return nil, fmt.Errorf("controller: %w", err)
		}
		c.jrnl = jr
		if cfg.Lease {
			c.lease = newLease(cfg, deps)
			jr.fence = c.lease
		}
	}
	_, err := deps.Lambda.Register(c.fn, 128, 15*time.Minute, 2*time.Second,
		func(raw any) error {
			p, ok := raw.(*pendingMigration)
			if !ok {
				return fmt.Errorf("controller: bad payload %T", raw)
			}
			if p.done || c.stopped {
				return nil
			}
			placement, err := opt.Replace(p.region)
			if err != nil {
				return fmt.Errorf("controller handle %s: %w", p.id, err)
			}
			c.complete(p, placement)
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	if err := deps.Bus.AddRule("spotverse-interruption"+suffix, EventSourceEC2, DetailTypeInterruption,
		func(ev eventbridge.Event) {
			p, ok := ev.Detail.(*pendingMigration)
			if !ok || c.stopped {
				return
			}
			if c.rival {
				// The payload is the publishing incarnation's registry
				// entry; a rival adopts a private copy so the two
				// incarnations genuinely race on the journal, not on
				// shared memory.
				p = c.adopt(p)
			}
			c.execute(p)
		}); err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	if err := deps.CloudWatch.Schedule("open-request-sweep"+suffix, SweepInterval, func(now time.Time) {
		if c.stopped {
			return
		}
		c.sweeps++
		if c.lease != nil {
			// Keep the lease warm on the sweep cadence; failure is fine —
			// commits re-check, and a later sweep re-acquires.
			c.lease.ensure(now)
		}
		deps.Provider.EvaluateOpenRequests()
		c.recoverPending(now)
	}); err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	return c, nil
}

// adopt registers a private copy of another incarnation's pending
// migration under this (rival) incarnation, refreshing an existing copy
// in place. The journal entry already exists — the publisher recorded
// it — so no journal write happens here.
func (c *Controller) adopt(p *pendingMigration) *pendingMigration {
	if mine, ok := c.pending[p.id]; ok && !mine.done {
		mine.region = p.region
		mine.relaunch = p.relaunch
		mine.since = p.since
		return mine
	}
	cp := &pendingMigration{id: p.id, region: p.region, relaunch: p.relaunch, since: p.since}
	c.pending[cp.id] = cp
	return cp
}

// Stop retires this incarnation: handlers, sweeps, and executions
// become no-ops. The lease (if held) is not released — a real deposed
// controller dies without cleanup; expiry hands the token over.
func (c *Controller) Stop() { c.stopped = true }

// complete finishes a migration exactly once: later duplicate executions
// (a sweep retry racing a slow handler) find done set and no-op, so the
// workload is never relaunched twice for one interruption. With the
// journal on, the in-memory flag is backed by a conditional write, so
// the guarantee also holds across crash-restarts — an execution started
// by a dead incarnation and the replayed entry of the live one race for
// the same journal condition, and exactly one wins.
func (c *Controller) complete(p *pendingMigration, placement strategy.Placement) {
	if p.done {
		return
	}
	if c.jrnl != nil {
		switch c.jrnl.markDone(p) {
		case commitSkip:
			// Another incarnation already relaunched this migration: close
			// it locally without actuating.
			p.done = true
			delete(c.pending, p.id)
			c.noteRecovered(p.id)
			return
		case commitDefer:
			// Fenced out or journal unreachable: leave the entry pending so
			// a later sweep retries once the lease or journal heals.
			return
		}
	}
	p.done = true
	delete(c.pending, p.id)
	c.handled++
	p.relaunch(placement)
	c.noteRecovered(p.id)
}

// noteRecovered tracks crash-recovery latency: once every migration
// replayed at the last restart has resolved, the elapsed sim time since
// the restart is added to the recovery total.
func (c *Controller) noteRecovered(id string) {
	if c.recoverySet == nil || !c.recoverySet[id] {
		return
	}
	delete(c.recoverySet, id)
	if len(c.recoverySet) == 0 {
		c.recoverySet = nil
		c.recoveryDur += c.deps.Engine.Now().Sub(c.restartAt)
	}
}

// execute wraps the handler Lambda in a retrying Step Functions run. It
// reports whether an execution was actually started (breakers or an
// already-inflight attempt may defer it).
func (c *Controller) execute(p *pendingMigration) bool {
	if p.done || p.inflight {
		return false
	}
	if p.relaunch == nil {
		// A journal-replayed entry whose relaunch closure has not been
		// reattached yet: nothing to actuate until the resolver can
		// supply one (a later sweep retries).
		if c.resolver != nil {
			p.relaunch = c.resolver(p.id)
		}
		if p.relaunch == nil {
			return false
		}
	}
	if !c.cfg.DisableBreakers && c.anyBreakerOpen(c.deps.Engine.Now()) {
		c.breakerSkips++
		return false
	}
	p.inflight = true
	p.attempts++
	err := c.deps.StepFn.ExecuteAsync("interruption-"+p.id,
		func(finish func(error)) {
			err := c.deps.Lambda.Invoke(c.fn, p, func(res lambda.Result) {
				finish(res.Err)
			})
			if err != nil {
				finish(err)
			}
		},
		func(final error) {
			c.finish(p, final)
		})
	if err != nil {
		// The state machine itself refused the execution (an injected
		// Step Functions fault): no attempt ran, no callback will fire.
		c.finish(p, err)
		return false
	}
	return true
}

// finish records the outcome of one Step Functions execution.
func (c *Controller) finish(p *pendingMigration, final error) {
	p.inflight = false
	if final == nil {
		c.noteSuccess()
		return
	}
	c.failures++
	now := c.deps.Engine.Now()
	c.noteFailure(final, now)
	p.nextTry = now.Add(c.retryDelay(p.attempts))
	if c.jrnl != nil {
		c.jrnl.update(p, journalFailed)
	}
}

// retryDelay is jittered exponential backoff over the sweep's recovery
// base: RecoveryAfter doubled per attempt, capped at maxRetryDelay, with
// equal jitter (half deterministic, half uniform) to desynchronise the
// retry herd after a regional brownout lifts.
func (c *Controller) retryDelay(attempts int) time.Duration {
	d := c.cfg.RecoveryAfter
	for i := 1; i < attempts && d < maxRetryDelay; i++ {
		d *= 2
	}
	if d > maxRetryDelay {
		d = maxRetryDelay
	}
	return d/2 + time.Duration(c.rng.Float64()*float64(d/2))
}

// breakerKey attributes a failure to the faulted (service, region) when
// the error chain carries a typed chaos fault, and to the control plane
// at large otherwise.
func breakerKey(err error) string {
	var ce *chaos.Error
	if errors.As(err, &ce) {
		region := string(ce.Region)
		if region == "" {
			region = "global"
		}
		return ce.Service + "@" + region
	}
	return "control-plane@global"
}

func (c *Controller) noteFailure(err error, now time.Time) {
	key := breakerKey(err)
	b, ok := c.breakers[key]
	if !ok {
		b = newBreaker(c.cfg.BreakerFailures, c.cfg.BreakerCooldown)
		c.breakers[key] = b
	}
	before, trips := b.state, b.trips
	b.failure(now)
	c.observeBreaker(key, before, trips, b)
	if c.jrnl != nil {
		c.jrnl.snapshotBreaker(key, b)
	}
}

func (c *Controller) noteSuccess() {
	for _, key := range c.breakerKeys() {
		b := c.breakers[key]
		dirty := b.state != breakerClosed || b.consecutive != 0
		before, trips := b.state, b.trips
		b.success()
		c.observeBreaker(key, before, trips, b)
		if dirty && c.jrnl != nil {
			c.jrnl.snapshotBreaker(key, b)
		}
	}
}

// anyBreakerOpen polls every breaker (never short-circuiting, so the
// open→half-open transitions are independent of map order).
func (c *Controller) anyBreakerOpen(now time.Time) bool {
	open := false
	for _, key := range c.breakerKeys() {
		b := c.breakers[key]
		before, trips := b.state, b.trips
		if !b.allow(now) {
			open = true
		}
		c.observeBreaker(key, before, trips, b)
	}
	return open
}

// breakerKeys returns the breaker registry's keys in sorted order, so
// every observer callback sequence is deterministic. The breaker logic
// itself is order-independent (no short-circuits), so sorting changes
// nothing behaviourally.
func (c *Controller) breakerKeys() []string {
	keys := make([]string, 0, len(c.breakers))
	for key := range c.breakers {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

func breakerStateName(s breakerState) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// observeBreaker feeds the configured BreakerObserver with one breaker
// transition, suppressing no-op polls (state and trip count unchanged).
// The key is prefixed with this incarnation's ControllerID so a
// split-brain rival's independent breaker counters never interleave
// with the primary's under one key.
func (c *Controller) observeBreaker(key string, before breakerState, beforeTrips int, b *breaker) {
	if c.cfg.BreakerObserver == nil || (b.state == before && b.trips == beforeTrips) {
		return
	}
	c.cfg.BreakerObserver(c.cfg.ControllerID+"/"+key, breakerStateName(before), breakerStateName(b.state), b.trips)
}

// recoverPending is the notice-loss recovery pass: any migration still
// pending after RecoveryAfter — its EventBridge delivery dropped, its
// retries exhausted, or its executions deferred by a breaker — is
// re-executed, subject to its backoff deadline.
func (c *Controller) recoverPending(now time.Time) {
	if c.cfg.DisableRecovery || len(c.pending) == 0 {
		return
	}
	ids := make([]string, 0, len(c.pending))
	for id := range c.pending {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := c.pending[id]
		if p.done {
			delete(c.pending, id)
			continue
		}
		if p.inflight || now.Sub(p.since) < c.cfg.RecoveryAfter || now.Before(p.nextTry) {
			continue
		}
		if c.execute(p) {
			c.recoveries++
		}
	}
}

// HandleInterruption records the pending migration, then publishes the
// interruption warning onto the bus, which triggers the full EventBridge
// → Step Functions → Lambda chain. The registry write happens first so a
// dropped delivery leaves the sweep something to recover.
func (c *Controller) HandleInterruption(id string, current catalog.Region, relaunch strategy.RelaunchFunc) error {
	if relaunch == nil {
		return fmt.Errorf("controller: nil relaunch for %s", id)
	}
	now := c.deps.Engine.Now()
	p, ok := c.pending[id]
	if !ok || p.done {
		p = &pendingMigration{id: id, region: current, relaunch: relaunch, since: now}
		if c.jrnl != nil {
			c.jrnl.record(p)
		}
		c.pending[id] = p
	} else {
		// Re-interruption while still pending: refresh the source region
		// and relaunch closure, keep the attempt history. The journal sees
		// the refreshed record before memory does (write-ahead order).
		next := *p
		next.region = current
		next.relaunch = relaunch
		next.since = now
		if c.jrnl != nil {
			c.jrnl.record(&next)
		}
		*p = next
	}
	c.deps.Bus.Put(eventbridge.Event{
		Source:     EventSourceEC2,
		DetailType: DetailTypeInterruption,
		Detail:     p,
	})
	if c.jrnl != nil {
		c.jrnl.update(p, journalPublished)
	}
	return nil
}

// SetRelaunchResolver installs the factory that rebuilds relaunch
// closures for journal-replayed migrations (closures cannot be
// persisted; the workload driver knows how to reconstruct them).
func (c *Controller) SetRelaunchResolver(fn func(id string) strategy.RelaunchFunc) {
	c.resolver = fn
}

// CrashRestart models the Controller process dying and cold-starting:
// the in-memory pending registry and breakers are lost (the AWS-side
// actors — Lambda registrations, EventBridge rules, the CloudWatch
// sweep, in-flight Step Functions executions — survive, as they do in
// production). With the journal on, the new incarnation replays every
// open entry, reattaches relaunch closures through the resolver, and
// rescans the provider so an entry whose relaunch happened but whose
// commit write was lost is closed instead of re-executed. Without the
// journal the pending migrations are simply gone.
func (c *Controller) CrashRestart() {
	now := c.deps.Engine.Now()
	c.restarts++
	if c.cfg.BreakerObserver != nil {
		// Restart marker: the breaker registry is about to be replaced
		// (possibly with older journal snapshots whose trip counts are
		// lower), so downstream per-key sequence checks must reset this
		// incarnation's per-key sequences here.
		c.cfg.BreakerObserver(c.cfg.ControllerID+"/", "restart", "restart", c.restarts)
	}
	lost := len(c.pending)
	c.pending = make(map[string]*pendingMigration)
	c.breakers = make(map[string]*breaker)
	if c.jrnl == nil {
		c.killDropped += lost
		return
	}
	pend, brks := c.jrnl.replay()
	relaunchedAfter := make(map[string]time.Time)
	for _, inst := range c.deps.Provider.RunningInstances() {
		if inst.Tag != "" {
			relaunchedAfter[inst.Tag] = inst.LaunchedAt
		}
	}
	for _, req := range c.deps.Provider.OpenRequests() {
		if req.Tag != "" {
			relaunchedAfter[req.Tag] = req.Created
		}
	}
	replayedNow := 0
	for id, p := range pend {
		// A running instance or open request created after the entry's
		// interruption instant means the dead incarnation's relaunch did
		// land; close the entry instead of migrating the workload twice.
		if at, ok := relaunchedAfter[id]; ok && at.After(p.since) {
			c.jrnl.update(p, journalRelaunched)
			continue
		}
		if c.resolver != nil {
			p.relaunch = c.resolver(id)
		}
		c.pending[id] = p
		replayedNow++
	}
	c.breakers = brks
	c.replayed += replayedNow
	if lost > replayedNow {
		c.killDropped += lost - replayedNow
	}
	if replayedNow > 0 {
		// If a previous recovery window is still open, fold it in at the
		// restart instant before starting the new one.
		if c.recoverySet != nil {
			c.recoveryDur += now.Sub(c.restartAt)
		}
		c.restartAt = now
		c.recoverySet = make(map[string]bool, replayedNow)
		for id := range c.pending {
			c.recoverySet[id] = true
		}
	}
}

// RecoveryStats reports crash-restart counters: restarts survived,
// journal entries replayed into the new incarnation, pending migrations
// dropped on a kill (nothing journaled to replay), relaunches refused
// by the journal's exactly-once commit, journal writes lost to faults,
// and total sim time the replayed migrations took to re-resolve.
func (c *Controller) RecoveryStats() (restarts, replayed, dropped, refused, journalLost int, recovery time.Duration) {
	refusedN, lostN := 0, 0
	if c.jrnl != nil {
		refusedN, lostN = c.jrnl.skips, c.jrnl.lost
	}
	return c.restarts, c.replayed, c.killDropped, refusedN, lostN, c.recoveryDur
}

// LeaseStats reports the fencing lease's counters: fresh acquisitions,
// renewals, expired-lease takeovers, commits refused by the fencing
// gate, lease operations abandoned to injected faults, and relaunch
// commits deferred back to the sweep. All zero when Config.Lease is off.
func (c *Controller) LeaseStats() (acquires, renewals, takeovers, fenced, lost, deferrals int) {
	if c.lease == nil {
		return 0, 0, 0, 0, 0, 0
	}
	return c.lease.acquires, c.lease.renewals, c.lease.takeovers,
		c.lease.fenced, c.lease.lost, c.jrnl.deferrals
}

// Stats reports controller counters: handled interruptions, exhausted
// retries, and sweep executions.
func (c *Controller) Stats() (handled, failures, sweeps int) {
	return c.handled, c.failures, c.sweeps
}

// ResilienceStats reports the hardening counters: migrations recovered
// by the sweep, total circuit-breaker trips, and executions deferred
// because a breaker was open.
func (c *Controller) ResilienceStats() (recoveries, breakerTrips, breakerSkips int) {
	trips := 0
	for _, b := range c.breakers {
		trips += b.trips
	}
	return c.recoveries, trips, c.breakerSkips
}

// Pending reports how many migrations are awaiting completion.
func (c *Controller) Pending() int { return len(c.pending) }
