package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/chaos"
	"spotverse/internal/services/eventbridge"
	"spotverse/internal/services/lambda"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
)

// Controller is SpotVerse's actuation component. Interruption handling
// follows the paper's AWS wiring: the interruption warning is published
// to EventBridge, a rule routes it into a Step Functions execution that
// retries the interruption-handler Lambda, and the handler asks the
// Optimizer for a migration target and re-provisions the workload. A
// CloudWatch rule sweeps open spot requests every 15 minutes.
//
// The Controller is hardened against a faulty control plane: every
// interruption is recorded in a pending-migration registry before the
// (droppable) EventBridge publish, so the sweep can recover migrations
// whose notice was lost or whose handler chain exhausted its retries;
// retry timing uses jittered exponential backoff; and per-(service,
// region) circuit breakers defer executions while a dependency is
// browned out rather than burning attempts into it.
type Controller struct {
	cfg  Config
	deps Deps
	opt  *Optimizer
	rng  *simclock.RNG

	handled  int
	failures int
	sweeps   int

	pending      map[string]*pendingMigration
	breakers     map[string]*breaker
	recoveries   int
	breakerSkips int
}

const (
	handlerFunction = "spotverse-interruption-handler"
	// SweepInterval is the paper's periodic open-request check; the
	// hardened Controller piggybacks its pending-migration recovery pass
	// on the same rule.
	SweepInterval = 15 * time.Minute
	// maxRetryDelay caps the exponential recovery backoff.
	maxRetryDelay = time.Hour
)

// pendingMigration is one interrupted workload awaiting re-provisioning.
// It is recorded before the EventBridge publish — ground truth that
// survives a dropped delivery — and doubles as the event payload.
type pendingMigration struct {
	id       string
	region   catalog.Region
	relaunch strategy.RelaunchFunc
	since    time.Time
	attempts int
	nextTry  time.Time
	inflight bool
	done     bool
}

func newController(cfg Config, deps Deps, opt *Optimizer) (*Controller, error) {
	c := &Controller{
		cfg:      cfg,
		deps:     deps,
		opt:      opt,
		rng:      simclock.Stream(cfg.Seed, "spotverse/controller"),
		pending:  make(map[string]*pendingMigration),
		breakers: make(map[string]*breaker),
	}
	_, err := deps.Lambda.Register(handlerFunction, 128, 15*time.Minute, 2*time.Second,
		func(raw any) error {
			p, ok := raw.(*pendingMigration)
			if !ok {
				return fmt.Errorf("controller: bad payload %T", raw)
			}
			if p.done {
				return nil
			}
			placement, err := opt.Replace(p.region)
			if err != nil {
				return fmt.Errorf("controller handle %s: %w", p.id, err)
			}
			c.complete(p, placement)
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	if err := deps.Bus.AddRule("spotverse-interruption", EventSourceEC2, DetailTypeInterruption,
		func(ev eventbridge.Event) {
			p, ok := ev.Detail.(*pendingMigration)
			if !ok {
				return
			}
			c.execute(p)
		}); err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	if err := deps.CloudWatch.Schedule("open-request-sweep", SweepInterval, func(now time.Time) {
		c.sweeps++
		deps.Provider.EvaluateOpenRequests()
		c.recoverPending(now)
	}); err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	return c, nil
}

// complete finishes a migration exactly once: later duplicate executions
// (a sweep retry racing a slow handler) find done set and no-op, so the
// workload is never relaunched twice for one interruption.
func (c *Controller) complete(p *pendingMigration, placement strategy.Placement) {
	if p.done {
		return
	}
	p.done = true
	delete(c.pending, p.id)
	c.handled++
	p.relaunch(placement)
}

// execute wraps the handler Lambda in a retrying Step Functions run. It
// reports whether an execution was actually started (breakers or an
// already-inflight attempt may defer it).
func (c *Controller) execute(p *pendingMigration) bool {
	if p.done || p.inflight {
		return false
	}
	if !c.cfg.DisableBreakers && c.anyBreakerOpen(c.deps.Engine.Now()) {
		c.breakerSkips++
		return false
	}
	p.inflight = true
	p.attempts++
	err := c.deps.StepFn.ExecuteAsync("interruption-"+p.id,
		func(finish func(error)) {
			err := c.deps.Lambda.Invoke(handlerFunction, p, func(res lambda.Result) {
				finish(res.Err)
			})
			if err != nil {
				finish(err)
			}
		},
		func(final error) {
			c.finish(p, final)
		})
	if err != nil {
		// The state machine itself refused the execution (an injected
		// Step Functions fault): no attempt ran, no callback will fire.
		c.finish(p, err)
		return false
	}
	return true
}

// finish records the outcome of one Step Functions execution.
func (c *Controller) finish(p *pendingMigration, final error) {
	p.inflight = false
	if final == nil {
		c.noteSuccess()
		return
	}
	c.failures++
	now := c.deps.Engine.Now()
	c.noteFailure(final, now)
	p.nextTry = now.Add(c.retryDelay(p.attempts))
}

// retryDelay is jittered exponential backoff over the sweep's recovery
// base: RecoveryAfter doubled per attempt, capped at maxRetryDelay, with
// equal jitter (half deterministic, half uniform) to desynchronise the
// retry herd after a regional brownout lifts.
func (c *Controller) retryDelay(attempts int) time.Duration {
	d := c.cfg.RecoveryAfter
	for i := 1; i < attempts && d < maxRetryDelay; i++ {
		d *= 2
	}
	if d > maxRetryDelay {
		d = maxRetryDelay
	}
	return d/2 + time.Duration(c.rng.Float64()*float64(d/2))
}

// breakerKey attributes a failure to the faulted (service, region) when
// the error chain carries a typed chaos fault, and to the control plane
// at large otherwise.
func breakerKey(err error) string {
	var ce *chaos.Error
	if errors.As(err, &ce) {
		region := string(ce.Region)
		if region == "" {
			region = "global"
		}
		return ce.Service + "@" + region
	}
	return "control-plane@global"
}

func (c *Controller) noteFailure(err error, now time.Time) {
	key := breakerKey(err)
	b, ok := c.breakers[key]
	if !ok {
		b = newBreaker(c.cfg.BreakerFailures, c.cfg.BreakerCooldown)
		c.breakers[key] = b
	}
	b.failure(now)
}

func (c *Controller) noteSuccess() {
	for _, b := range c.breakers {
		b.success()
	}
}

// anyBreakerOpen polls every breaker (never short-circuiting, so the
// open→half-open transitions are independent of map order).
func (c *Controller) anyBreakerOpen(now time.Time) bool {
	open := false
	for _, b := range c.breakers {
		if !b.allow(now) {
			open = true
		}
	}
	return open
}

// recoverPending is the notice-loss recovery pass: any migration still
// pending after RecoveryAfter — its EventBridge delivery dropped, its
// retries exhausted, or its executions deferred by a breaker — is
// re-executed, subject to its backoff deadline.
func (c *Controller) recoverPending(now time.Time) {
	if c.cfg.DisableRecovery || len(c.pending) == 0 {
		return
	}
	ids := make([]string, 0, len(c.pending))
	for id := range c.pending {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := c.pending[id]
		if p.done {
			delete(c.pending, id)
			continue
		}
		if p.inflight || now.Sub(p.since) < c.cfg.RecoveryAfter || now.Before(p.nextTry) {
			continue
		}
		if c.execute(p) {
			c.recoveries++
		}
	}
}

// HandleInterruption records the pending migration, then publishes the
// interruption warning onto the bus, which triggers the full EventBridge
// → Step Functions → Lambda chain. The registry write happens first so a
// dropped delivery leaves the sweep something to recover.
func (c *Controller) HandleInterruption(id string, current catalog.Region, relaunch strategy.RelaunchFunc) error {
	if relaunch == nil {
		return fmt.Errorf("controller: nil relaunch for %s", id)
	}
	now := c.deps.Engine.Now()
	p, ok := c.pending[id]
	if !ok || p.done {
		p = &pendingMigration{id: id, region: current, relaunch: relaunch, since: now}
		c.pending[id] = p
	} else {
		// Re-interruption while still pending: refresh the source region
		// and relaunch closure, keep the attempt history.
		p.region = current
		p.relaunch = relaunch
		p.since = now
	}
	c.deps.Bus.Put(eventbridge.Event{
		Source:     EventSourceEC2,
		DetailType: DetailTypeInterruption,
		Detail:     p,
	})
	return nil
}

// Stats reports controller counters: handled interruptions, exhausted
// retries, and sweep executions.
func (c *Controller) Stats() (handled, failures, sweeps int) {
	return c.handled, c.failures, c.sweeps
}

// ResilienceStats reports the hardening counters: migrations recovered
// by the sweep, total circuit-breaker trips, and executions deferred
// because a breaker was open.
func (c *Controller) ResilienceStats() (recoveries, breakerTrips, breakerSkips int) {
	trips := 0
	for _, b := range c.breakers {
		trips += b.trips
	}
	return c.recoveries, trips, c.breakerSkips
}

// Pending reports how many migrations are awaiting completion.
func (c *Controller) Pending() int { return len(c.pending) }
