package core

import (
	"fmt"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/services/eventbridge"
	"spotverse/internal/services/lambda"
	"spotverse/internal/strategy"
)

// Controller is SpotVerse's actuation component. Interruption handling
// follows the paper's AWS wiring: the interruption warning is published
// to EventBridge, a rule routes it into a Step Functions execution that
// retries the interruption-handler Lambda, and the handler asks the
// Optimizer for a migration target and re-provisions the workload. A
// CloudWatch rule sweeps open spot requests every 15 minutes.
type Controller struct {
	cfg  Config
	deps Deps
	opt  *Optimizer

	handled  int
	failures int
	sweeps   int
}

const (
	handlerFunction = "spotverse-interruption-handler"
	// SweepInterval is the paper's periodic open-request check.
	SweepInterval = 15 * time.Minute
)

// interruptionPayload travels through the bus and Lambda.
type interruptionPayload struct {
	workloadID string
	region     catalog.Region
	relaunch   strategy.RelaunchFunc
}

func newController(cfg Config, deps Deps, opt *Optimizer) (*Controller, error) {
	c := &Controller{cfg: cfg, deps: deps, opt: opt}
	_, err := deps.Lambda.Register(handlerFunction, 128, 15*time.Minute, 2*time.Second,
		func(raw any) error {
			p, ok := raw.(interruptionPayload)
			if !ok {
				return fmt.Errorf("controller: bad payload %T", raw)
			}
			placement, err := opt.Replace(p.region)
			if err != nil {
				return fmt.Errorf("controller handle %s: %w", p.workloadID, err)
			}
			p.relaunch(placement)
			c.handled++
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	if err := deps.Bus.AddRule("spotverse-interruption", EventSourceEC2, DetailTypeInterruption,
		func(ev eventbridge.Event) {
			p, ok := ev.Detail.(interruptionPayload)
			if !ok {
				return
			}
			c.execute(p)
		}); err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	if err := deps.CloudWatch.Schedule("open-request-sweep", SweepInterval, func(time.Time) {
		c.sweeps++
		deps.Provider.EvaluateOpenRequests()
	}); err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	return c, nil
}

// execute wraps the handler Lambda in a retrying Step Functions run.
func (c *Controller) execute(p interruptionPayload) {
	_ = c.deps.StepFn.ExecuteAsync("interruption-"+p.workloadID,
		func(finish func(error)) {
			err := c.deps.Lambda.Invoke(handlerFunction, p, func(res lambda.Result) {
				finish(res.Err)
			})
			if err != nil {
				finish(err)
			}
		},
		func(final error) {
			if final != nil {
				c.failures++
			}
		})
}

// HandleInterruption publishes the interruption warning onto the bus,
// which triggers the full EventBridge → Step Functions → Lambda chain.
func (c *Controller) HandleInterruption(id string, current catalog.Region, relaunch strategy.RelaunchFunc) error {
	if relaunch == nil {
		return fmt.Errorf("controller: nil relaunch for %s", id)
	}
	c.deps.Bus.Put(eventbridge.Event{
		Source:     EventSourceEC2,
		DetailType: DetailTypeInterruption,
		Detail:     interruptionPayload{workloadID: id, region: current, relaunch: relaunch},
	})
	return nil
}

// Stats reports controller counters: handled interruptions, exhausted
// retries, and sweep executions.
func (c *Controller) Stats() (handled, failures, sweeps int) {
	return c.handled, c.failures, c.sweeps
}
