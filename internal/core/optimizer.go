package core

import (
	"fmt"
	"sort"

	"spotverse/internal/catalog"
	"spotverse/internal/cloud"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
)

// Optimizer implements Algorithm 1's region selection over the Monitor's
// collected metrics.
type Optimizer struct {
	cfg  Config
	deps Deps
	mon  *Monitor
	rng  *simclock.RNG
}

func newOptimizer(cfg Config, deps Deps, mon *Monitor, rng *simclock.RNG) *Optimizer {
	return &Optimizer{cfg: cfg, deps: deps, mon: mon, rng: rng}
}

// RegionScore is one scored candidate.
type RegionScore struct {
	Region catalog.Region
	// Combined is PlacementScore + StabilityScore.
	Combined int
	// SpotPriceUSD is the region's current spot price.
	SpotPriceUSD float64
}

// ScoreRegions returns every offering region with its combined score and
// price (Algorithm 1's ScoreRegions). In degraded mode — the Monitor's
// collector silenced and snapshots aging — scores are discounted by
// snapshot age (StaleAfter) and regions past StaleCutoff are dropped
// outright; when everything ages out, the empty result engages the
// on-demand fallback downstream.
func (o *Optimizer) ScoreRegions() ([]RegionScore, error) {
	entries, err := o.mon.LatestAged()
	if err != nil {
		return nil, err
	}
	now := o.deps.Engine.Now()
	out := make([]RegionScore, 0, len(entries))
	for _, e := range entries {
		age := now.Sub(e.CollectedAt)
		if o.cfg.StaleCutoff > 0 && age > o.cfg.StaleCutoff {
			continue
		}
		score := e.CombinedScore
		switch o.cfg.Scoring {
		case ScoreStabilityOnly:
			score = e.StabilityScore
		case ScorePriceOnly:
			// Every region passes any threshold; the price sort decides.
			score = 1 << 20
		}
		if o.cfg.StaleAfter > 0 && age > o.cfg.StaleAfter {
			score -= int(age / o.cfg.StaleAfter)
		}
		out = append(out, RegionScore{
			Region:       e.Region,
			Combined:     score,
			SpotPriceUSD: e.SpotPriceUSD,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Region < out[j].Region })
	return out, nil
}

// SelectRegions filters scored regions by the configured threshold and
// mode (Algorithm 1's SelectRegions).
func (o *Optimizer) SelectRegions(scores []RegionScore) []RegionScore {
	var out []RegionScore
	for _, s := range scores {
		switch o.cfg.Selection {
		case SelectBucket:
			if s.Combined == o.cfg.Threshold {
				out = append(out, s)
			}
		default:
			if s.Combined >= o.cfg.Threshold {
				out = append(out, s)
			}
		}
	}
	return out
}

// TopRegions runs the full pipeline: score, filter, price-sort ascending,
// take the top R, excluding any regions in exclude. An empty result means
// the on-demand fallback should engage.
func (o *Optimizer) TopRegions(exclude map[catalog.Region]bool) ([]catalog.Region, error) {
	scores, err := o.ScoreRegions()
	if err != nil {
		return nil, err
	}
	selected := o.SelectRegions(scores)
	filtered := selected[:0]
	for _, s := range selected {
		if !exclude[s.Region] {
			filtered = append(filtered, s)
		}
	}
	sort.SliceStable(filtered, func(i, j int) bool {
		return filtered[i].SpotPriceUSD < filtered[j].SpotPriceUSD
	})
	n := o.cfg.MaxRegions
	if n > len(filtered) {
		n = len(filtered)
	}
	out := make([]catalog.Region, 0, n)
	for _, s := range filtered[:n] {
		out = append(out, s.Region)
	}
	return out, nil
}

// CheapestOnDemand returns the region with the lowest on-demand price
// for the managed instance type (Algorithm 1's CheapestOnDemand).
func (o *Optimizer) CheapestOnDemand() (catalog.Region, error) {
	r, _, err := o.deps.Market.Catalog().CheapestOnDemand(o.cfg.InstanceType)
	if err != nil {
		return "", fmt.Errorf("optimizer: %w", err)
	}
	return r, nil
}

// Replace picks the migration target for a workload interrupted in
// current: a random region among the top R excluding current; if none
// qualify, the cheapest on-demand region (unless fallback is disabled,
// in which case the interrupted region itself is retried on spot).
func (o *Optimizer) Replace(current catalog.Region) (strategy.Placement, error) {
	top, err := o.TopRegions(map[catalog.Region]bool{current: true})
	if err != nil {
		return strategy.Placement{}, err
	}
	if len(top) == 0 {
		if o.cfg.DisableOnDemandFallback {
			return strategy.Placement{Region: current, Lifecycle: cloud.LifecycleSpot}, nil
		}
		od, err := o.CheapestOnDemand()
		if err != nil {
			return strategy.Placement{}, err
		}
		return strategy.Placement{Region: od, Lifecycle: cloud.LifecycleOnDemand}, nil
	}
	pick := top[0]
	if o.cfg.Migration != PickCheapest {
		pick = simclock.Pick(o.rng, top)
	}
	return strategy.Placement{Region: pick, Lifecycle: cloud.LifecycleSpot}, nil
}
