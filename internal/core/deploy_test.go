package core

import (
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/cost"
	"spotverse/internal/services/cloudformation"
	"spotverse/internal/services/s3"
	"spotverse/internal/simclock"
)

func TestInfrastructureTemplateValid(t *testing.T) {
	tpl := InfrastructureTemplate(Config{InstanceType: catalog.M5XLarge}.normalized())
	if len(tpl.Resources) != 8 {
		t.Fatalf("resources = %d", len(tpl.Resources))
	}
	// The template itself must be deployable (dependency graph acyclic):
	// CreateStack validates it end to end below.
	rec := cloudformation.NewEngine()
	deps := newDeps(500)
	RegisterProviders(rec, deps)
	stack, err := rec.CreateStack(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if stack.Status != cloudformation.StatusCreateComplete {
		t.Fatalf("status = %v", stack.Status)
	}
}

func TestDeployEndToEnd(t *testing.T) {
	deps := newDeps(501)
	ledger := cost.NewLedger()
	deps.S3 = s3.New(deps.Engine, deps.Market.Catalog(), ledger)
	engine := cloudformation.NewEngine()
	sv, stack, err := Deploy(engine, Config{InstanceType: catalog.M5XLarge, Seed: 501}, deps)
	if err != nil {
		t.Fatal(err)
	}
	if stack == nil || sv == nil {
		t.Fatal("nil outputs")
	}
	// The stack provisioned the metrics table; the monitor reuses it.
	if _, ok := stack.PhysicalID("MetricsTable"); !ok {
		t.Fatal("metrics table not in stack")
	}
	if err := sv.Monitor().CollectNow(); err != nil {
		t.Fatal(err)
	}
	// The activity-log bucket exists on S3.
	if _, err := deps.S3.BucketRegion("spotverse-activity-logs"); err != nil {
		t.Fatal(err)
	}
	// The manager works end to end after a CFN deployment.
	placements, err := sv.PlaceInitial([]string{"w1", "w2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(placements) != 2 {
		t.Fatalf("placements = %v", placements)
	}
	if err := deps.Engine.Run(simclock.Epoch.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	// Tear down.
	if err := engine.DeleteStack(stack.Name); err != nil {
		t.Fatal(err)
	}
}

func TestDeployWithoutS3SkipsBucket(t *testing.T) {
	deps := newDeps(502)
	engine := cloudformation.NewEngine()
	sv, stack, err := Deploy(engine, Config{InstanceType: catalog.M5XLarge, Seed: 502}, deps)
	if err != nil {
		t.Fatal(err)
	}
	if sv == nil {
		t.Fatal("nil manager")
	}
	phys, ok := stack.PhysicalID("ActivityLogs")
	if !ok || phys != "bucket/unbound/spotverse-activity-logs" {
		t.Fatalf("bucket physical id = %q", phys)
	}
}

func TestDeployValidation(t *testing.T) {
	deps := newDeps(503)
	if _, _, err := Deploy(nil, Config{InstanceType: catalog.M5XLarge}, deps); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, _, err := Deploy(cloudformation.NewEngine(), Config{InstanceType: catalog.M5XLarge}, Deps{}); err == nil {
		t.Fatal("empty deps accepted")
	}
}
