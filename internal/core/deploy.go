package core

import (
	"errors"
	"fmt"

	"spotverse/internal/catalog"
	"spotverse/internal/services/cloudformation"
	"spotverse/internal/services/dynamo"
	"spotverse/internal/services/s3"
)

// The paper deploys SpotVerse with AWS CloudFormation (Section 4,
// Fig. 6). This file provides the equivalent declarative path: a stack
// template describing the deployment's resources, providers that
// provision the data-plane resources onto the simulated services, and a
// Deploy helper that creates the stack and then wires SpotVerse to it.
// Code-level resources (Lambda registrations, EventBridge rules,
// CloudWatch schedules) are declared for visibility but provisioned by
// New itself, matching the paper's split between CloudFormation and the
// AWS SDK.

// Resource type names used in the deployment template.
const (
	ResourceDynamoTable   = "DynamoDB::Table"
	ResourceS3Bucket      = "S3::Bucket"
	ResourceLambda        = "Lambda::Function"
	ResourceEventRule     = "Events::Rule"
	ResourceSchedule      = "CloudWatch::Schedule"
	ResourceStateMachine  = "StepFunctions::StateMachine"
	activityLogBucketName = "spotverse-activity-logs"
)

// InfrastructureTemplate returns the declarative description of a
// SpotVerse deployment for the given instance type.
func InfrastructureTemplate(cfg Config) *cloudformation.Template {
	return &cloudformation.Template{
		Name: "spotverse-" + string(cfg.InstanceType),
		Resources: []cloudformation.Resource{
			{ID: "MetricsTable", Type: ResourceDynamoTable,
				Properties: map[string]string{"name": MetricsTable}},
			{ID: "ActivityLogs", Type: ResourceS3Bucket,
				Properties: map[string]string{"name": activityLogBucketName, "region": "us-east-1"}},
			{ID: "MetricsCollector", Type: ResourceLambda, DependsOn: []string{"MetricsTable"},
				Properties: map[string]string{"name": CollectorFunction, "memoryMB": "128"}},
			{ID: "InterruptionHandler", Type: ResourceLambda, DependsOn: []string{"MetricsTable"},
				Properties: map[string]string{"name": handlerFunction, "memoryMB": "128"}},
			{ID: "RetryMachine", Type: ResourceStateMachine, DependsOn: []string{"InterruptionHandler"}},
			{ID: "InterruptionRule", Type: ResourceEventRule, DependsOn: []string{"RetryMachine"},
				Properties: map[string]string{"source": EventSourceEC2, "detailType": DetailTypeInterruption}},
			{ID: "CollectionSchedule", Type: ResourceSchedule, DependsOn: []string{"MetricsCollector"}},
			{ID: "SweepSchedule", Type: ResourceSchedule},
		},
	}
}

// RegisterProviders binds the template's resource types to the simulated
// services. Data-plane resources (table, bucket) are provisioned by the
// stack; code-plane resources are logical markers provisioned by New.
func RegisterProviders(engine *cloudformation.Engine, deps Deps) {
	engine.RegisterProvider(ResourceDynamoTable, cloudformation.ProviderFunc{
		CreateFn: func(r cloudformation.Resource) (string, error) {
			name := r.Properties["name"]
			if name == "" {
				return "", errors.New("core: table resource needs a name")
			}
			if err := deps.Dynamo.CreateTable(name); err != nil && !errors.Is(err, dynamo.ErrTableExists) {
				return "", err
			}
			return "table/" + name, nil
		},
	})
	engine.RegisterProvider(ResourceS3Bucket, cloudformation.ProviderFunc{
		CreateFn: func(r cloudformation.Resource) (string, error) {
			name := r.Properties["name"]
			region := catalog.Region(r.Properties["region"])
			if name == "" || region == "" {
				return "", errors.New("core: bucket resource needs name and region")
			}
			if deps.S3 == nil {
				// S3 is optional in Deps; skip bucket provisioning when
				// the deployment has no object store wired.
				return "bucket/unbound/" + name, nil
			}
			if err := deps.S3.CreateBucket(name, region); err != nil && !errors.Is(err, s3.ErrBucketExists) {
				return "", err
			}
			return "bucket/" + name, nil
		},
	})
	logical := cloudformation.ProviderFunc{
		CreateFn: func(r cloudformation.Resource) (string, error) {
			return "logical/" + r.ID, nil
		},
	}
	for _, t := range []string{ResourceLambda, ResourceEventRule, ResourceSchedule, ResourceStateMachine} {
		engine.RegisterProvider(t, logical)
	}
}

// Deploy provisions the infrastructure stack and then constructs
// SpotVerse on top of it.
func Deploy(engine *cloudformation.Engine, cfg Config, deps Deps) (*SpotVerse, *cloudformation.Stack, error) {
	if engine == nil {
		return nil, nil, errors.New("core: nil cloudformation engine")
	}
	if err := deps.validate(); err != nil {
		return nil, nil, err
	}
	RegisterProviders(engine, deps)
	stack, err := engine.CreateStack(InfrastructureTemplate(cfg.normalized()))
	if err != nil {
		return nil, nil, fmt.Errorf("core: deploy: %w", err)
	}
	sv, err := New(cfg, deps)
	if err != nil {
		// The stack stays up for inspection; callers may DeleteStack.
		return nil, stack, fmt.Errorf("core: deploy wiring: %w", err)
	}
	return sv, stack, nil
}
