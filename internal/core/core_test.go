package core

import (
	"errors"
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/cloud"
	"spotverse/internal/cost"
	"spotverse/internal/market"
	"spotverse/internal/services/cloudwatch"
	"spotverse/internal/services/dynamo"
	"spotverse/internal/services/eventbridge"
	"spotverse/internal/services/lambda"
	"spotverse/internal/services/stepfn"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
)

func newDeps(seed int64) Deps {
	eng := simclock.NewEngine()
	mkt := market.New(catalog.Default(), seed, simclock.Epoch)
	ledger := cost.NewLedger()
	return Deps{
		Engine:     eng,
		Market:     mkt,
		Provider:   cloud.New(eng, mkt, seed),
		Dynamo:     dynamo.New(ledger),
		Lambda:     lambda.New(eng, ledger),
		Bus:        eventbridge.New(ledger),
		CloudWatch: cloudwatch.New(eng, ledger),
		StepFn:     stepfn.MustNew(eng, ledger, stepfn.Config{}),
	}
}

func newSpotVerse(t *testing.T, cfg Config) (*SpotVerse, Deps) {
	t.Helper()
	deps := newDeps(cfg.Seed + 1000)
	if cfg.InstanceType == "" {
		cfg.InstanceType = catalog.M5XLarge
	}
	sv, err := New(cfg, deps)
	if err != nil {
		t.Fatal(err)
	}
	return sv, deps
}

func TestNewValidatesDeps(t *testing.T) {
	if _, err := New(Config{InstanceType: catalog.M5XLarge}, Deps{}); err == nil {
		t.Fatal("empty deps should be rejected")
	}
	deps := newDeps(1)
	if _, err := New(Config{InstanceType: "x9.bogus"}, deps); err == nil {
		t.Fatal("unknown instance type should be rejected")
	}
}

func TestMonitorCollectsIntoDynamo(t *testing.T) {
	sv, deps := newSpotVerse(t, Config{Seed: 1})
	if err := sv.Monitor().CollectNow(); err != nil {
		t.Fatal(err)
	}
	items, err := deps.Dynamo.Scan(MetricsTable, string(catalog.M5XLarge)+"#")
	if err != nil {
		t.Fatal(err)
	}
	want := len(deps.Market.Catalog().OfferedRegions(catalog.M5XLarge))
	if len(items) != want {
		t.Fatalf("items = %d, want %d", len(items), want)
	}
}

func TestMonitorScheduledCollection(t *testing.T) {
	sv, deps := newSpotVerse(t, Config{Seed: 2, CollectEvery: time.Hour})
	if err := deps.Engine.Run(simclock.Epoch.Add(3*time.Hour + time.Minute)); err != nil {
		t.Fatal(err)
	}
	if sv.Monitor().Collections() != 3 {
		t.Fatalf("collections = %d, want 3", sv.Monitor().Collections())
	}
}

func TestMonitorLatestRoundTripsAdvisor(t *testing.T) {
	sv, deps := newSpotVerse(t, Config{Seed: 3})
	entries, err := sv.Monitor().Latest() // triggers a synchronous collect
	if err != nil {
		t.Fatal(err)
	}
	direct, err := deps.Market.AdvisorSnapshot(catalog.M5XLarge, deps.Engine.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(direct) {
		t.Fatalf("entries = %d, want %d", len(entries), len(direct))
	}
	byRegion := map[catalog.Region]int{}
	for _, e := range entries {
		byRegion[e.Region] = e.CombinedScore
	}
	for _, d := range direct {
		if byRegion[d.Region] != d.CombinedScore {
			t.Fatalf("region %s: stored score %d != live %d", d.Region, byRegion[d.Region], d.CombinedScore)
		}
	}
}

// TestOptimizerTopRegionsThreshold6 pins the Fig. 9 / Table 3 grouping:
// at threshold 6 only the stable quartet qualifies.
func TestOptimizerTopRegionsThreshold6(t *testing.T) {
	sv, _ := newSpotVerse(t, Config{Seed: 4, Threshold: 6})
	top, err := sv.Optimizer().TopRegions(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[catalog.Region]bool{
		"us-west-1": true, "ap-northeast-3": true, "eu-west-1": true, "eu-north-1": true,
	}
	if len(top) != 4 {
		t.Fatalf("top = %v, want the stable quartet", top)
	}
	for _, r := range top {
		if !want[r] {
			t.Fatalf("unexpected region %s in top set %v", r, top)
		}
	}
}

// TestOptimizerBucketSelection pins Table 3's disjoint quartets.
func TestOptimizerBucketSelection(t *testing.T) {
	want := map[int][]catalog.Region{
		6: {"ap-northeast-3", "eu-north-1", "eu-west-1", "us-west-1"},
		5: {"ap-southeast-1", "ca-central-1", "eu-west-2", "eu-west-3"},
		4: {"ap-southeast-2", "us-east-1", "us-east-2", "us-west-2"},
	}
	for threshold, regions := range want {
		sv, _ := newSpotVerse(t, Config{Seed: 5, Threshold: threshold, Selection: SelectBucket})
		top, err := sv.Optimizer().TopRegions(nil)
		if err != nil {
			t.Fatal(err)
		}
		got := map[catalog.Region]bool{}
		for _, r := range top {
			got[r] = true
		}
		if len(top) != len(regions) {
			t.Fatalf("threshold %d: top = %v, want %v", threshold, top, regions)
		}
		for _, r := range regions {
			if !got[r] {
				t.Fatalf("threshold %d: missing %s in %v", threshold, r, top)
			}
		}
	}
}

func TestOptimizerSortsByPriceAscending(t *testing.T) {
	sv, deps := newSpotVerse(t, Config{Seed: 6, Threshold: 5, MaxRegions: 8})
	top, err := sv.Optimizer().TopRegions(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) < 2 {
		t.Fatalf("top = %v", top)
	}
	now := deps.Engine.Now()
	for i := 1; i < len(top); i++ {
		a, _, _ := deps.Market.RegionSpotPrice(catalog.M5XLarge, top[i-1], now)
		b, _, _ := deps.Market.RegionSpotPrice(catalog.M5XLarge, top[i], now)
		if a > b {
			t.Fatalf("top not price-ascending: %v", top)
		}
	}
}

func TestOptimizerReplaceExcludesCurrent(t *testing.T) {
	sv, _ := newSpotVerse(t, Config{Seed: 7, Threshold: 5})
	for i := 0; i < 50; i++ {
		p, err := sv.Optimizer().Replace("ca-central-1")
		if err != nil {
			t.Fatal(err)
		}
		if p.Region == "ca-central-1" {
			t.Fatal("Replace returned the interrupted region")
		}
		if p.Lifecycle != cloud.LifecycleSpot {
			t.Fatalf("lifecycle = %v", p.Lifecycle)
		}
	}
}

func TestOnDemandFallbackWhenNothingQualifies(t *testing.T) {
	// Threshold 20 is unreachable (max combined = 13).
	sv, _ := newSpotVerse(t, Config{Seed: 8, Threshold: 20})
	p, err := sv.Optimizer().Replace("ca-central-1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Lifecycle != cloud.LifecycleOnDemand {
		t.Fatalf("lifecycle = %v, want on-demand fallback", p.Lifecycle)
	}
	placements, err := sv.PlaceInitial([]string{"w1", "w2"})
	if err != nil {
		t.Fatal(err)
	}
	for id, pl := range placements {
		if pl.Lifecycle != cloud.LifecycleOnDemand {
			t.Fatalf("%s: lifecycle = %v, want on-demand", id, pl.Lifecycle)
		}
	}
}

func TestOnDemandFallbackDisabled(t *testing.T) {
	sv, _ := newSpotVerse(t, Config{Seed: 9, Threshold: 20, DisableOnDemandFallback: true})
	p, err := sv.Optimizer().Replace("ca-central-1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Lifecycle != cloud.LifecycleSpot || p.Region != "ca-central-1" {
		t.Fatalf("placement = %+v, want spot retry in place", p)
	}
}

func TestPlaceInitialRoundRobin(t *testing.T) {
	sv, _ := newSpotVerse(t, Config{Seed: 10, Threshold: 6})
	ids := []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"}
	placements, err := sv.PlaceInitial(ids)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[catalog.Region]int{}
	for _, p := range placements {
		counts[p.Region]++
		if p.Lifecycle != cloud.LifecycleSpot {
			t.Fatalf("lifecycle = %v", p.Lifecycle)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("regions used = %v, want 4", counts)
	}
	for r, n := range counts {
		if n != 2 {
			t.Fatalf("region %s got %d workloads, want 2 (round-robin)", r, n)
		}
	}
}

func TestPlaceInitialFixedStartRegion(t *testing.T) {
	sv, _ := newSpotVerse(t, Config{Seed: 11, FixedStartRegion: "ca-central-1"})
	placements, err := sv.PlaceInitial([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range placements {
		if p.Region != "ca-central-1" || p.Lifecycle != cloud.LifecycleSpot {
			t.Fatalf("placement = %+v", p)
		}
	}
}

func TestControllerInterruptionChain(t *testing.T) {
	sv, deps := newSpotVerse(t, Config{Seed: 12, Threshold: 5})
	var got strategy.Placement
	relaunched := false
	err := sv.OnInterrupted("w1", "ca-central-1", func(p strategy.Placement) {
		got = p
		relaunched = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if relaunched {
		t.Fatal("relaunch happened synchronously; should ride the Lambda")
	}
	if err := deps.Engine.Run(simclock.Epoch.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if !relaunched {
		t.Fatal("relaunch never happened")
	}
	if got.Region == "ca-central-1" || got.Region == "" {
		t.Fatalf("migrated to %q", got.Region)
	}
	handled, failures, _ := sv.Controller().Stats()
	if handled != 1 || failures != 0 {
		t.Fatalf("controller stats = %d/%d", handled, failures)
	}
}

func TestControllerNilRelaunchRejected(t *testing.T) {
	sv, _ := newSpotVerse(t, Config{Seed: 13})
	if err := sv.OnInterrupted("w", "ca-central-1", nil); err == nil {
		t.Fatal("nil relaunch should error")
	}
}

func TestControllerSweepRuns(t *testing.T) {
	sv, deps := newSpotVerse(t, Config{Seed: 14})
	if err := deps.Engine.Run(simclock.Epoch.Add(time.Hour + time.Minute)); err != nil {
		t.Fatal(err)
	}
	_, _, sweeps := sv.Controller().Stats()
	if sweeps != 4 {
		t.Fatalf("sweeps = %d, want 4 in ~1h at 15m", sweeps)
	}
}

func TestLambdaBillingAccrues(t *testing.T) {
	deps := newDeps(99)
	ledger := cost.NewLedger()
	deps.Dynamo = dynamo.New(ledger)
	deps.Lambda = lambda.New(deps.Engine, ledger)
	deps.Bus = eventbridge.New(ledger)
	deps.CloudWatch = cloudwatch.New(deps.Engine, ledger)
	deps.StepFn = stepfn.MustNew(deps.Engine, ledger, stepfn.Config{})
	sv, err := New(Config{InstanceType: catalog.M5XLarge, Seed: 99}, deps)
	if err != nil {
		t.Fatal(err)
	}
	if err := deps.Engine.Run(simclock.Epoch.Add(2*time.Hour + time.Minute)); err != nil {
		t.Fatal(err)
	}
	if sv.Monitor().Collections() < 2 {
		t.Fatalf("collections = %d", sv.Monitor().Collections())
	}
	if ledger.Of(cost.CategoryLambda) <= 0 || ledger.Of(cost.CategoryDynamoDB) <= 0 {
		t.Fatalf("control-plane costs missing: %s", ledger)
	}
}

func TestConfigNormalization(t *testing.T) {
	cfg := Config{}.normalized()
	if cfg.Threshold != DefaultThreshold || cfg.MaxRegions != DefaultMaxRegions ||
		cfg.Selection != SelectAtLeast || cfg.CollectEvery != DefaultCollectEvery {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestErrNoMetricsSurfaces(t *testing.T) {
	// Directly exercise the Latest error path with a fresh monitor whose
	// collect is forced to fail by removing the table... simplest: scan
	// for a type never collected.
	sv, deps := newSpotVerse(t, Config{Seed: 15})
	_ = sv // metrics table exists but holds only m5.xlarge rows after collect
	if err := sv.Monitor().CollectNow(); err != nil {
		t.Fatal(err)
	}
	items, err := deps.Dynamo.Scan(MetricsTable, "p3.2xlarge#")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Fatal("unexpected p3 rows")
	}
	if !errors.Is(ErrNoMetrics, ErrNoMetrics) {
		t.Fatal("sanity")
	}
}
