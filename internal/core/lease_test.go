package core

import (
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/simclock"
	"spotverse/internal/strategy"
)

// failEverything is a dynamo fault that rejects every data-plane call —
// the journal fully unreachable.
func failEverything(string, catalog.Region) error { return errTestFault }

// leasePair builds two lease handles with distinct holder IDs over one
// shared journal table — the raw material of a split-brain race.
func leasePair(t *testing.T, seed int64) (a, b *lease, deps Deps) {
	t.Helper()
	deps = newDeps(seed)
	if err := deps.Dynamo.CreateTable(JournalTable); err != nil {
		t.Fatal(err)
	}
	a = &lease{deps: deps, holder: "a", ttl: time.Hour}
	b = &lease{deps: deps, holder: "b", ttl: time.Hour}
	return a, b, deps
}

func TestLeaseAcquireRenewAndLiveExclusion(t *testing.T) {
	a, b, deps := leasePair(t, 1)
	now := deps.Engine.Now()
	if !a.ensure(now) {
		t.Fatal("fresh acquire failed")
	}
	if a.token != 1 || a.acquires != 1 {
		t.Fatalf("token=%d acquires=%d after fresh acquire", a.token, a.acquires)
	}
	// A live foreign lease excludes the rival.
	if b.ensure(now) {
		t.Fatal("rival acquired over a live lease")
	}
	// The holder renews at the same token.
	if !a.ensure(now.Add(30*time.Minute)) || a.token != 1 || a.renewals != 1 {
		t.Fatalf("renew failed: token=%d renewals=%d", a.token, a.renewals)
	}
	if !a.commitCheck(now.Add(31 * time.Minute)) {
		t.Fatal("holder's commit check refused")
	}
}

func TestLeaseTakeoverBumpsTokenAndFencesDeposed(t *testing.T) {
	a, b, deps := leasePair(t, 2)
	now := deps.Engine.Now()
	if !a.ensure(now) {
		t.Fatal("acquire failed")
	}
	// Past a's TTL the rival takes over, bumping the fencing token.
	later := now.Add(2 * time.Hour)
	if !b.ensure(later) {
		t.Fatal("takeover of expired lease failed")
	}
	if b.token != 2 || b.takeovers != 1 {
		t.Fatalf("token=%d takeovers=%d after takeover", b.token, b.takeovers)
	}
	// The deposed holder still believes it holds token 1: its commit
	// check must lose the conditional write, not refresh the lease.
	if a.commitCheck(later.Add(time.Minute)) {
		t.Fatal("deposed holder's stale-token commit accepted")
	}
	if a.fenced != 1 || a.held {
		t.Fatalf("fenced=%d held=%v after deposition", a.fenced, a.held)
	}
	// And the winner keeps committing.
	if !b.commitCheck(later.Add(2 * time.Minute)) {
		t.Fatal("live holder's commit refused")
	}
}

func TestLeaseUnreachableJournalFailsSafe(t *testing.T) {
	a, _, deps := leasePair(t, 3)
	now := deps.Engine.Now()
	if !a.ensure(now) {
		t.Fatal("acquire failed")
	}
	deps.Dynamo.SetFault(failEverything)
	if a.commitCheck(now.Add(time.Minute)) {
		t.Fatal("commit accepted with the journal unreachable")
	}
	if a.fenced != 1 || a.lost != 1 {
		t.Fatalf("fenced=%d lost=%d after unreachable renew, want 1/1", a.fenced, a.lost)
	}
	deps.Dynamo.SetFault(nil)
	if !a.commitCheck(now.Add(2 * time.Minute)) {
		t.Fatal("commit refused after the journal healed")
	}
}

// splitBrain runs the full two-incarnation race: interruptions fired
// while the journal is unreachable (so neither incarnation can record or
// commit), both controllers' sweeps retrying after it heals. It returns
// the relaunch count per workload.
func splitBrain(t *testing.T, disableFencing bool, seed int64) map[string]int {
	t.Helper()
	sv, deps := newSpotVerse(t, Config{
		Journal:        true,
		Lease:          true,
		DisableFencing: disableFencing,
		Seed:           seed,
	})
	relaunches := make(map[string]int)
	resolver := func(id string) strategy.RelaunchFunc {
		return func(strategy.Placement) { relaunches[id]++ }
	}
	sv.SetRelaunchResolver(resolver)
	if _, err := sv.NewRival(""); err == nil {
		t.Fatal("empty rival ID accepted")
	}
	rival, err := sv.NewRival("rival")
	if err != nil {
		t.Fatal(err)
	}
	defer rival.Stop()
	// The journal goes dark before the interruptions land: records are
	// lost and neither incarnation can prove anything at commit time.
	deps.Dynamo.SetFault(failEverything)
	for _, id := range []string{"w1", "w2", "w3"} {
		if err := sv.OnInterrupted(id, testRegion, resolver(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := deps.Engine.Run(simclock.Epoch.Add(10 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	// Journal heals; sweeps on both incarnations retry the pending work.
	deps.Dynamo.SetFault(nil)
	if err := deps.Engine.Run(simclock.Epoch.Add(6 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	return relaunches
}

func TestSplitBrainFencedExactlyOneRelaunch(t *testing.T) {
	relaunches := splitBrain(t, false, 910)
	for _, id := range []string{"w1", "w2", "w3"} {
		if relaunches[id] != 1 {
			t.Fatalf("workload %s relaunched %d times, want exactly 1 (got %v)", id, relaunches[id], relaunches)
		}
	}
}

func TestSplitBrainUnfencedDuplicatesRelaunches(t *testing.T) {
	relaunches := splitBrain(t, true, 911)
	dup := 0
	for _, n := range relaunches {
		if n > 1 {
			dup++
		}
	}
	if dup == 0 {
		t.Fatalf("unfenced split-brain produced no duplicate relaunches (%v); the fencing test would pass vacuously", relaunches)
	}
}
