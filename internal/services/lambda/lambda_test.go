package lambda

import (
	"errors"
	"testing"
	"time"

	"spotverse/internal/cost"
	"spotverse/internal/simclock"
)

func newRuntime() (*simclock.Engine, *Runtime, *cost.Ledger) {
	eng := simclock.NewEngine()
	l := cost.NewLedger()
	return eng, New(eng, l), l
}

func TestInvokeRunsHandlerAfterDuration(t *testing.T) {
	eng, rt, _ := newRuntime()
	ran := time.Time{}
	_, err := rt.Register("collector", 128, time.Minute, 5*time.Second, func(any) error {
		ran = eng.Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Invoke("collector", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if want := simclock.Epoch.Add(5 * time.Second); !ran.Equal(want) {
		t.Fatalf("handler ran at %v, want %v", ran, want)
	}
}

func TestPayloadDelivered(t *testing.T) {
	eng, rt, _ := newRuntime()
	var got any
	_, _ = rt.Register("f", 0, 0, 0, func(p any) error { got = p; return nil })
	_ = rt.Invoke("f", "payload-42", nil)
	_ = eng.Run(time.Time{})
	if got != "payload-42" {
		t.Fatalf("payload = %v", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	_, rt, _ := newRuntime()
	f, err := rt.Register("f", 0, 0, 0, func(any) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if f.MemoryMB != DefaultMemoryMB || f.Timeout != DefaultTimeout {
		t.Fatalf("defaults not applied: %+v", f)
	}
}

func TestTimeoutSkipsHandler(t *testing.T) {
	eng, rt, _ := newRuntime()
	ran := false
	_, _ = rt.Register("slow", 128, time.Minute, 2*time.Minute, func(any) error {
		ran = true
		return nil
	})
	var res Result
	_ = rt.Invoke("slow", nil, func(r Result) { res = r })
	_ = eng.Run(time.Time{})
	if ran {
		t.Fatal("handler ran despite timeout")
	}
	if !errors.Is(res.Err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", res.Err)
	}
	if res.Elapsed != time.Minute {
		t.Fatalf("elapsed = %v, want full timeout", res.Elapsed)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	eng, rt, _ := newRuntime()
	boom := errors.New("boom")
	_, _ = rt.Register("f", 0, 0, 0, func(any) error { return boom })
	var res Result
	_ = rt.Invoke("f", nil, func(r Result) { res = r })
	_ = eng.Run(time.Time{})
	if !errors.Is(res.Err, boom) {
		t.Fatalf("err = %v, want boom", res.Err)
	}
	_, failures := rt.Stats()
	if failures != 1 {
		t.Fatalf("failures = %d, want 1", failures)
	}
}

func TestUnknownFunction(t *testing.T) {
	_, rt, _ := newRuntime()
	if err := rt.Invoke("ghost", nil, nil); !errors.Is(err, ErrNoSuchFunction) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateRegisterRejected(t *testing.T) {
	_, rt, _ := newRuntime()
	_, _ = rt.Register("f", 0, 0, 0, func(any) error { return nil })
	if _, err := rt.Register("f", 0, 0, 0, func(any) error { return nil }); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestNilHandlerRejected(t *testing.T) {
	_, rt, _ := newRuntime()
	if _, err := rt.Register("f", 0, 0, 0, nil); err == nil {
		t.Fatal("nil handler should be rejected")
	}
}

func TestBillingGBSeconds(t *testing.T) {
	eng, rt, l := newRuntime()
	_, _ = rt.Register("f", 1024, time.Minute, 10*time.Second, func(any) error { return nil })
	_ = rt.Invoke("f", nil, nil)
	_ = eng.Run(time.Time{})
	want := cost.LambdaUSDPerRequest + 10*cost.LambdaUSDPerGBSecond // 1 GB for 10 s
	got := l.Of(cost.CategoryLambda)
	if got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("billed %v, want %v", got, want)
	}
}

func TestStatsCountInvocations(t *testing.T) {
	eng, rt, _ := newRuntime()
	_, _ = rt.Register("f", 0, 0, 0, func(any) error { return nil })
	for i := 0; i < 7; i++ {
		_ = rt.Invoke("f", nil, nil)
	}
	_ = eng.Run(time.Time{})
	inv, fails := rt.Stats()
	if inv != 7 || fails != 0 {
		t.Fatalf("stats = %d/%d", inv, fails)
	}
}
