// Package lambda simulates a serverless function runtime on the sim
// clock: registered functions with memory and timeout configuration,
// asynchronous invocation with a modelled execution duration, timeout
// enforcement, and GB-second + per-request billing. SpotVerse's Monitor
// collectors and the Controller's interruption handler run here, as in
// the paper's AWS implementation (128 MB, 15-minute timeout).
package lambda

import (
	"errors"
	"fmt"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/cost"
	"spotverse/internal/simclock"
)

// FaultFunc decides whether one API call fails with an injected fault
// (nil = healthy). Installed via SetFault; see internal/chaos.
type FaultFunc func(op string, region catalog.Region) error

// LatencyFunc adds extra duration to an invocation (cold starts,
// degraded dependencies). Installed via SetLatency.
type LatencyFunc func(op string) time.Duration

// faultedInvokeDelay is how long a rejected invocation takes to surface
// its error (API round-trip, not function runtime).
const faultedInvokeDelay = time.Second

// Defaults matching the paper's experimental environment.
const (
	DefaultMemoryMB = 128
	DefaultTimeout  = 15 * time.Minute
)

// Errors returned by the runtime.
var (
	ErrNoSuchFunction = errors.New("lambda: no such function")
	ErrTimeout        = errors.New("lambda: function timed out")
	ErrAlreadyExists  = errors.New("lambda: function already registered")
)

// Handler is the function body. It runs inside the simulation event loop
// at the invocation's completion instant and returns the outcome.
type Handler func(payload any) error

// Function is a registered lambda.
type Function struct {
	Name     string
	MemoryMB int
	Timeout  time.Duration
	// Duration models how long an invocation takes (billed and waited).
	Duration time.Duration
	handler  Handler
}

// Result reports one finished invocation.
type Result struct {
	Function string
	Started  time.Time
	Elapsed  time.Duration
	Err      error
}

// Runtime hosts functions and executes invocations.
type Runtime struct {
	eng     *simclock.Engine
	ledger  *cost.Ledger
	funcs   map[string]*Function
	fault   FaultFunc
	latency LatencyFunc

	invocations int64
	errors      int64
}

// New returns an empty runtime charging the ledger.
func New(eng *simclock.Engine, ledger *cost.Ledger) *Runtime {
	return &Runtime{eng: eng, ledger: ledger, funcs: make(map[string]*Function)}
}

// SetFault installs a fault interceptor consulted on every invocation;
// nil (the default) disables injection.
func (rt *Runtime) SetFault(fn FaultFunc) { rt.fault = fn }

// SetLatency installs a latency interceptor adding extra duration to
// invocations; nil (the default) adds none.
func (rt *Runtime) SetLatency(fn LatencyFunc) { rt.latency = fn }

// Register adds a function. Zero memory/timeout/duration take defaults
// (128 MB, 15 min, 2 s).
func (rt *Runtime) Register(name string, memoryMB int, timeout, duration time.Duration, h Handler) (*Function, error) {
	if _, ok := rt.funcs[name]; ok {
		return nil, fmt.Errorf("register %q: %w", name, ErrAlreadyExists)
	}
	if h == nil {
		return nil, fmt.Errorf("register %q: nil handler", name)
	}
	if memoryMB <= 0 {
		memoryMB = DefaultMemoryMB
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	if duration <= 0 {
		duration = 2 * time.Second
	}
	f := &Function{Name: name, MemoryMB: memoryMB, Timeout: timeout, Duration: duration, handler: h}
	rt.funcs[name] = f
	return f, nil
}

// Invoke runs the function asynchronously. done (optional) receives the
// result when the invocation finishes. If the modelled duration exceeds
// the timeout, the handler is not executed and the result is ErrTimeout
// (billed for the full timeout, as AWS does).
func (rt *Runtime) Invoke(name string, payload any, done func(Result)) error {
	f, ok := rt.funcs[name]
	if !ok {
		return fmt.Errorf("invoke %q: %w", name, ErrNoSuchFunction)
	}
	started := rt.eng.Now()
	rt.invocations++
	rt.ledger.MustAdd(cost.CategoryLambda, cost.LambdaUSDPerRequest)

	if rt.fault != nil {
		if ferr := rt.fault("invoke:"+name, ""); ferr != nil {
			// The invocation is rejected before the handler runs: the
			// request is billed, the error lands after an API round-trip.
			rt.eng.ScheduleAfter(faultedInvokeDelay, "lambda-fault:"+name, func() {
				rt.errors++
				if done != nil {
					done(Result{Function: name, Started: started, Elapsed: faultedInvokeDelay, Err: fmt.Errorf("invoke %q: %w", name, ferr)})
				}
			})
			return nil
		}
	}
	dur := f.Duration
	if rt.latency != nil {
		dur += rt.latency("invoke:" + name)
	}
	bill := func(elapsed time.Duration) {
		gbSeconds := float64(f.MemoryMB) / 1024 * elapsed.Seconds()
		rt.ledger.MustAdd(cost.CategoryLambda, gbSeconds*cost.LambdaUSDPerGBSecond)
	}
	if dur > f.Timeout {
		rt.eng.ScheduleAfter(f.Timeout, "lambda-timeout:"+name, func() {
			bill(f.Timeout)
			rt.errors++
			if done != nil {
				done(Result{Function: name, Started: started, Elapsed: f.Timeout, Err: fmt.Errorf("invoke %q: %w", name, ErrTimeout)})
			}
		})
		return nil
	}
	rt.eng.ScheduleAfter(dur, "lambda:"+name, func() {
		err := f.handler(payload)
		bill(dur)
		if err != nil {
			rt.errors++
		}
		if done != nil {
			done(Result{Function: name, Started: started, Elapsed: dur, Err: err})
		}
	})
	return nil
}

// Stats reports invocation counters.
func (rt *Runtime) Stats() (invocations, failures int64) {
	return rt.invocations, rt.errors
}
