// Package ami models the Amazon-Machine-Image workflow of Section 4: the
// paper bakes Galaxy, its tools, and the startup scripts into a custom
// AMI in one region and propagates copies to every region SpotVerse may
// launch in. Instances can only launch in regions holding a copy, and
// cross-region copies cost snapshot transfer.
package ami

import (
	"errors"
	"fmt"
	"sort"

	"spotverse/internal/catalog"
	"spotverse/internal/cost"
)

// Errors returned by the registry.
var (
	ErrExists     = errors.New("ami: image already registered")
	ErrNoSuchAMI  = errors.New("ami: no such image")
	ErrNotPresent = errors.New("ami: image not present in region")
	ErrBadSize    = errors.New("ami: size must be positive")
)

// SnapshotTransferUSDPerGB prices cross-region AMI copies (EBS snapshot
// transfer).
const SnapshotTransferUSDPerGB = 0.02

// Image is one registered machine image.
type Image struct {
	Name      string
	SizeBytes int64
	home      catalog.Region
	copies    map[catalog.Region]bool
}

// Regions lists the regions holding a copy, sorted.
func (img *Image) Regions() []catalog.Region {
	out := make([]catalog.Region, 0, len(img.copies))
	for r := range img.copies {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FaultFunc decides whether one API call fails with an injected fault
// (nil = healthy). Installed via SetFault; see internal/chaos.
type FaultFunc func(op string, region catalog.Region) error

// Registry tracks images and their regional copies.
type Registry struct {
	cat    *catalog.Catalog
	ledger *cost.Ledger
	images map[string]*Image
	fault  FaultFunc
}

// SetFault installs a fault interceptor on Copy (and so Propagate); nil
// (the default) disables injection.
func (reg *Registry) SetFault(fn FaultFunc) { reg.fault = fn }

// New returns an empty registry charging the ledger for copies.
func New(cat *catalog.Catalog, ledger *cost.Ledger) *Registry {
	return &Registry{cat: cat, ledger: ledger, images: make(map[string]*Image)}
}

// Register creates an image in its home region.
func (reg *Registry) Register(name string, home catalog.Region, sizeBytes int64) (*Image, error) {
	if _, ok := reg.images[name]; ok {
		return nil, fmt.Errorf("register %q: %w", name, ErrExists)
	}
	if sizeBytes <= 0 {
		return nil, fmt.Errorf("register %q: %w", name, ErrBadSize)
	}
	if _, err := reg.cat.RegionInfo(home); err != nil {
		return nil, fmt.Errorf("register %q: %w", name, err)
	}
	img := &Image{Name: name, SizeBytes: sizeBytes, home: home, copies: map[catalog.Region]bool{home: true}}
	reg.images[name] = img
	return img, nil
}

// Image fetches a registered image.
func (reg *Registry) Image(name string) (*Image, error) {
	img, ok := reg.images[name]
	if !ok {
		return nil, fmt.Errorf("image %q: %w", name, ErrNoSuchAMI)
	}
	return img, nil
}

// Copy replicates the image into a region, charging snapshot transfer.
// Copying to a region that already holds it is a no-op.
func (reg *Registry) Copy(name string, to catalog.Region) error {
	if reg.fault != nil {
		if err := reg.fault("copy", to); err != nil {
			return fmt.Errorf("copy %q to %s: %w", name, to, err)
		}
	}
	img, err := reg.Image(name)
	if err != nil {
		return err
	}
	if _, err := reg.cat.RegionInfo(to); err != nil {
		return fmt.Errorf("copy %q: %w", name, err)
	}
	if img.copies[to] {
		return nil
	}
	gb := float64(img.SizeBytes) / (1 << 30)
	reg.ledger.MustAdd(cost.CategoryS3Transfer, gb*SnapshotTransferUSDPerGB)
	img.copies[to] = true
	return nil
}

// Propagate copies the image to every region offering the instance type
// — the paper's cross-region AMI distribution step. It returns the
// regions newly copied to.
func (reg *Registry) Propagate(name string, t catalog.InstanceType) ([]catalog.Region, error) {
	img, err := reg.Image(name)
	if err != nil {
		return nil, err
	}
	var copied []catalog.Region
	for _, r := range reg.cat.OfferedRegions(t) {
		if img.copies[r] {
			continue
		}
		if err := reg.Copy(name, r); err != nil {
			return copied, err
		}
		copied = append(copied, r)
	}
	return copied, nil
}

// Present reports whether the image exists in the region.
func (reg *Registry) Present(name string, r catalog.Region) bool {
	img, err := reg.Image(name)
	if err != nil {
		return false
	}
	return img.copies[r]
}

// LaunchGate returns a function suitable for cloud.Provider.SetLaunchGate:
// launches are rejected in regions lacking the image.
func (reg *Registry) LaunchGate(name string) func(catalog.InstanceType, catalog.Region) error {
	return func(_ catalog.InstanceType, r catalog.Region) error {
		if !reg.Present(name, r) {
			return fmt.Errorf("%w: %q in %s", ErrNotPresent, name, r)
		}
		return nil
	}
}
