package ami

import (
	"errors"
	"testing"

	"spotverse/internal/catalog"
	"spotverse/internal/cost"
)

func newRegistry() (*Registry, *cost.Ledger) {
	l := cost.NewLedger()
	return New(catalog.Default(), l), l
}

func TestRegisterAndPresence(t *testing.T) {
	reg, _ := newRegistry()
	img, err := reg.Register("galaxy-ami", "us-east-1", 8<<30)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Present("galaxy-ami", "us-east-1") {
		t.Fatal("home region missing image")
	}
	if reg.Present("galaxy-ami", "eu-north-1") {
		t.Fatal("uncopied region has image")
	}
	if got := img.Regions(); len(got) != 1 || got[0] != "us-east-1" {
		t.Fatalf("regions = %v", got)
	}
}

func TestRegisterValidation(t *testing.T) {
	reg, _ := newRegistry()
	if _, err := reg.Register("x", "narnia-1", 1); err == nil {
		t.Fatal("unknown region accepted")
	}
	if _, err := reg.Register("x", "us-east-1", 0); !errors.Is(err, ErrBadSize) {
		t.Fatalf("err = %v", err)
	}
	if _, err := reg.Register("x", "us-east-1", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("x", "us-east-1", 1); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestCopyChargesOnceAndIsIdempotent(t *testing.T) {
	reg, l := newRegistry()
	_, _ = reg.Register("galaxy-ami", "us-east-1", 8<<30)
	if err := reg.Copy("galaxy-ami", "eu-north-1"); err != nil {
		t.Fatal(err)
	}
	want := 8 * SnapshotTransferUSDPerGB
	if got := l.Of(cost.CategoryS3Transfer); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("copy cost %v, want %v", got, want)
	}
	if err := reg.Copy("galaxy-ami", "eu-north-1"); err != nil {
		t.Fatal(err)
	}
	if got := l.Of(cost.CategoryS3Transfer); got > want+1e-9 {
		t.Fatal("idempotent copy charged again")
	}
}

func TestPropagateCoversOfferedRegions(t *testing.T) {
	reg, _ := newRegistry()
	_, _ = reg.Register("galaxy-ami", "us-east-1", 4<<30)
	copied, err := reg.Propagate("galaxy-ami", catalog.M5XLarge)
	if err != nil {
		t.Fatal(err)
	}
	offered := catalog.Default().OfferedRegions(catalog.M5XLarge)
	if len(copied) != len(offered)-1 { // home already has it
		t.Fatalf("copied %d regions, want %d", len(copied), len(offered)-1)
	}
	for _, r := range offered {
		if !reg.Present("galaxy-ami", r) {
			t.Fatalf("region %s missing after propagate", r)
		}
	}
	// Second propagate is a no-op.
	copied2, err := reg.Propagate("galaxy-ami", catalog.M5XLarge)
	if err != nil || len(copied2) != 0 {
		t.Fatalf("re-propagate = %v err=%v", copied2, err)
	}
}

func TestLaunchGate(t *testing.T) {
	reg, _ := newRegistry()
	_, _ = reg.Register("galaxy-ami", "us-east-1", 1<<30)
	gate := reg.LaunchGate("galaxy-ami")
	if err := gate(catalog.M5XLarge, "us-east-1"); err != nil {
		t.Fatal(err)
	}
	if err := gate(catalog.M5XLarge, "eu-north-1"); !errors.Is(err, ErrNotPresent) {
		t.Fatalf("err = %v", err)
	}
	if err := reg.Copy("galaxy-ami", "eu-north-1"); err != nil {
		t.Fatal(err)
	}
	if err := gate(catalog.M5XLarge, "eu-north-1"); err != nil {
		t.Fatalf("gate after copy: %v", err)
	}
}

func TestUnknownImage(t *testing.T) {
	reg, _ := newRegistry()
	if err := reg.Copy("ghost", "us-east-1"); !errors.Is(err, ErrNoSuchAMI) {
		t.Fatalf("err = %v", err)
	}
	if _, err := reg.Propagate("ghost", catalog.M5XLarge); !errors.Is(err, ErrNoSuchAMI) {
		t.Fatalf("err = %v", err)
	}
	if reg.Present("ghost", "us-east-1") {
		t.Fatal("ghost present")
	}
}
