package dynamo

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"spotverse/internal/catalog"
	"spotverse/internal/cost"
)

func newStore() (*Store, *cost.Ledger) {
	l := cost.NewLedger()
	return New(l), l
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := newStore()
	if err := s.CreateTable("ckpt"); err != nil {
		t.Fatal(err)
	}
	in := Item{Key: "w1", Attrs: map[string]string{"shard": "3", "state": "done"}}
	if err := s.Put("ckpt", in); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("ckpt", "w1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Attrs["shard"] != "3" || got.Attrs["state"] != "done" {
		t.Fatalf("got %+v", got)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s, _ := newStore()
	_ = s.CreateTable("t")
	_ = s.Put("t", Item{Key: "k", Attrs: map[string]string{"a": "1"}})
	it, _ := s.Get("t", "k")
	it.Attrs["a"] = "evil"
	again, _ := s.Get("t", "k")
	if again.Attrs["a"] != "1" {
		t.Fatal("caller mutation leaked into store")
	}
}

func TestPutIfAbsent(t *testing.T) {
	s, _ := newStore()
	_ = s.CreateTable("t")
	if err := s.PutIfAbsent("t", Item{Key: "k", Attrs: map[string]string{"v": "1"}}); err != nil {
		t.Fatal(err)
	}
	err := s.PutIfAbsent("t", Item{Key: "k", Attrs: map[string]string{"v": "2"}})
	if !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("err = %v, want ErrConditionFailed", err)
	}
	it, _ := s.Get("t", "k")
	if it.Attrs["v"] != "1" {
		t.Fatal("losing write overwrote the item")
	}
}

func TestUpdateIf(t *testing.T) {
	s, _ := newStore()
	_ = s.CreateTable("t")
	_ = s.Put("t", Item{Key: "k", Attrs: map[string]string{"state": "running"}})
	if err := s.UpdateIf("t", Item{Key: "k", Attrs: map[string]string{"state": "done"}}, "state", "running"); err != nil {
		t.Fatal(err)
	}
	err := s.UpdateIf("t", Item{Key: "k", Attrs: map[string]string{"state": "zombie"}}, "state", "running")
	if !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("err = %v, want ErrConditionFailed", err)
	}
	err = s.UpdateIf("t", Item{Key: "missing", Attrs: map[string]string{"state": "x"}}, "state", "anything")
	if !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("missing item err = %v, want ErrConditionFailed", err)
	}
}

func TestValidation(t *testing.T) {
	s, _ := newStore()
	_ = s.CreateTable("t")
	if err := s.Put("t", Item{Key: ""}); !errors.Is(err, ErrEmptyPartitionKey) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Put("t", Item{Key: "k", Attrs: map[string]string{"_hidden": "x"}}); !errors.Is(err, ErrReservedAttrPrefix) {
		t.Fatalf("err = %v", err)
	}
}

func TestTableErrors(t *testing.T) {
	s, _ := newStore()
	if err := s.Put("nope", Item{Key: "k"}); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("err = %v", err)
	}
	_ = s.CreateTable("t")
	if err := s.CreateTable("t"); !errors.Is(err, ErrTableExists) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Get("t", "missing"); !errors.Is(err, ErrItemNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestScanPrefixSorted(t *testing.T) {
	s, _ := newStore()
	_ = s.CreateTable("t")
	for i := 0; i < 5; i++ {
		_ = s.Put("t", Item{Key: fmt.Sprintf("shard#%d", 4-i), Attrs: map[string]string{"i": "x"}})
	}
	_ = s.Put("t", Item{Key: "other#1", Attrs: nil})
	items, err := s.Scan("t", "shard#")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 5 {
		t.Fatalf("scan = %d items, want 5", len(items))
	}
	for i := 1; i < len(items); i++ {
		if items[i].Key <= items[i-1].Key {
			t.Fatal("scan not sorted")
		}
	}
}

func TestDeleteIdempotentAndBilled(t *testing.T) {
	s, l := newStore()
	_ = s.CreateTable("t")
	_ = s.Put("t", Item{Key: "k"})
	before := l.Of(cost.CategoryDynamoDB)
	if err := s.Delete("t", "k"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("t", "k"); err != nil {
		t.Fatal("delete of missing key should be a no-op")
	}
	if l.Of(cost.CategoryDynamoDB) <= before {
		t.Fatal("deletes not billed")
	}
}

// flaky fails the first n data-plane calls with a transient error, then
// heals — the shape of a chaos brownout a journal write retries through.
// Faults inject before any mutation, so a failed call leaves no trace.
func flaky(n int) FaultFunc {
	return func(op string, _ catalog.Region) error {
		if n > 0 {
			n--
			return errTransient
		}
		return nil
	}
}

var errTransient = errors.New("injected transient fault")

// retry mirrors the journal's bounded-retry loop: call fn until it
// stops returning the transient error, up to attempts times.
func retry(attempts int, fn func() error) error {
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); !errors.Is(err, errTransient) {
			return err
		}
	}
	return err
}

func TestPutIfAbsentRetryIdempotent(t *testing.T) {
	s, _ := newStore()
	_ = s.CreateTable("t")
	s.SetFault(flaky(2))
	it := Item{Key: "jrnl#w1", Attrs: map[string]string{"status": "recorded", "open": "1"}}
	if err := retry(3, func() error { return s.PutIfAbsent("t", it) }); err != nil {
		t.Fatalf("retried PutIfAbsent = %v, want success", err)
	}
	// The two faulted attempts must not have landed half-writes: exactly
	// one item exists and a fresh conditional insert still finds it.
	items, _ := s.Scan("t", "jrnl#")
	if len(items) != 1 {
		t.Fatalf("scan = %d items, want 1", len(items))
	}
	if err := s.PutIfAbsent("t", it); !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("re-insert err = %v, want ErrConditionFailed", err)
	}
}

func TestUpdateIfRetryIdempotent(t *testing.T) {
	s, _ := newStore()
	_ = s.CreateTable("t")
	_ = s.Put("t", Item{Key: "k", Attrs: map[string]string{"status": "recorded", "open": "1"}})
	s.SetFault(flaky(2))
	commit := Item{Key: "k", Attrs: map[string]string{"status": "relaunched", "open": "0"}}
	if err := retry(3, func() error { return s.UpdateIf("t", commit, "open", "1") }); err != nil {
		t.Fatalf("retried UpdateIf = %v, want success", err)
	}
	got, _ := s.Get("t", "k")
	if got.Attrs["status"] != "relaunched" || got.Attrs["open"] != "0" {
		t.Fatalf("item = %+v after retried commit", got.Attrs)
	}
	// A duplicate commit — a second incarnation racing the same
	// transition — must lose the conditional, not double-apply.
	if err := s.UpdateIf("t", commit, "open", "1"); !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("duplicate commit err = %v, want ErrConditionFailed", err)
	}
}

func TestRetryExhaustionSurfacesFault(t *testing.T) {
	s, _ := newStore()
	_ = s.CreateTable("t")
	s.SetFault(flaky(10))
	err := retry(3, func() error { return s.PutIfAbsent("t", Item{Key: "k"}) })
	if !errors.Is(err, errTransient) {
		t.Fatalf("exhausted retries err = %v, want the injected fault", err)
	}
	// Faults inject before the mutation, so three failed attempts must
	// leave no trace of the key.
	s.SetFault(nil)
	if _, err := s.Get("t", "k"); !errors.Is(err, ErrItemNotFound) {
		t.Fatalf("faulted writes leaked state: %v", err)
	}
}

func TestBillingCounts(t *testing.T) {
	s, l := newStore()
	_ = s.CreateTable("t")
	_ = s.Put("t", Item{Key: "a"})
	_ = s.Put("t", Item{Key: "b"})
	_, _ = s.Get("t", "a")
	reads, writes := s.Stats()
	if reads != 1 || writes != 2 {
		t.Fatalf("reads=%d writes=%d", reads, writes)
	}
	want := 2*cost.DynamoWriteUSD + 1*cost.DynamoReadUSD
	if got := l.Of(cost.CategoryDynamoDB); got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("billed %v, want %v", got, want)
	}
}

func TestUpdateIfAll(t *testing.T) {
	s, _ := newStore()
	_ = s.CreateTable("t")
	_ = s.Put("t", Item{Key: "lease", Attrs: map[string]string{"holder": "a", "token": "3"}})
	// All conditions hold: the write lands.
	next := Item{Key: "lease", Attrs: map[string]string{"holder": "a", "token": "3", "expires": "soon"}}
	if err := s.UpdateIfAll("t", next, map[string]string{"holder": "a", "token": "3"}); err != nil {
		t.Fatal(err)
	}
	// One condition stale (the fencing-token case): the write loses.
	err := s.UpdateIfAll("t", Item{Key: "lease", Attrs: map[string]string{"holder": "a", "token": "2"}},
		map[string]string{"holder": "a", "token": "2"})
	if !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("stale token err = %v, want ErrConditionFailed", err)
	}
	it, _ := s.Get("t", "lease")
	if it.Attrs["token"] != "3" || it.Attrs["expires"] != "soon" {
		t.Fatalf("losing write mutated the item: %+v", it.Attrs)
	}
	// A missing item never matches.
	err = s.UpdateIfAll("t", Item{Key: "ghost", Attrs: map[string]string{"a": "1"}}, map[string]string{"a": "1"})
	if !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("missing item err = %v, want ErrConditionFailed", err)
	}
	// Empty conditions degrade to "item exists".
	if err := s.UpdateIfAll("t", Item{Key: "lease", Attrs: map[string]string{"holder": "b"}}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateIfAllReportsSmallestFailingAttr(t *testing.T) {
	s, _ := newStore()
	_ = s.CreateTable("t")
	_ = s.Put("t", Item{Key: "k", Attrs: map[string]string{"x": "1", "y": "1"}})
	// Both conditions fail; the error must name the lexically smallest
	// attribute on every run (map iteration must not leak).
	for i := 0; i < 50; i++ {
		err := s.UpdateIfAll("t", Item{Key: "k", Attrs: map[string]string{"x": "9"}},
			map[string]string{"y": "0", "x": "0"})
		if !errors.Is(err, ErrConditionFailed) {
			t.Fatalf("err = %v, want ErrConditionFailed", err)
		}
		if want := `attr "x"`; !strings.Contains(err.Error(), want) {
			t.Fatalf("err %q does not name the smallest failing attr %s", err, want)
		}
	}
}
