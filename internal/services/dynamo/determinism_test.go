package dynamo

import (
	"errors"
	"strings"
	"testing"
)

// Regression test for a mapiter finding: when an item carries several
// reserved attributes, validate used to report whichever one the map
// range visited first. It must name the lexicographically smallest
// attribute on every run so error text is stable across retries and log
// diffs.
func TestValidateReportsSmallestReservedAttr(t *testing.T) {
	s, _ := newStore()
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	it := Item{Key: "k", Attrs: map[string]string{
		"_zeta":  "1",
		"_alpha": "2",
		"_mid":   "3",
		"ok":     "4",
	}}
	for run := 0; run < 10; run++ {
		err := s.Put("t", it)
		if !errors.Is(err, ErrReservedAttrPrefix) {
			t.Fatalf("err = %v, want ErrReservedAttrPrefix", err)
		}
		if !strings.Contains(err.Error(), `"_alpha"`) {
			t.Fatalf("err = %v, want it to name \"_alpha\"", err)
		}
	}
}
