// Package dynamo simulates a DynamoDB-like key-value store: named tables,
// string-keyed items of string attributes, conditional writes, and
// per-request billing. SpotVerse uses it for the Monitor's metric archive
// and for checkpoint workload state.
package dynamo

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"spotverse/internal/catalog"
	"spotverse/internal/cost"
)

// FaultFunc decides whether one API call fails with an injected fault
// (nil = healthy). Installed via SetFault; see internal/chaos.
type FaultFunc func(op string, region catalog.Region) error

// Errors returned by the store.
var (
	ErrNoSuchTable        = errors.New("dynamo: no such table")
	ErrTableExists        = errors.New("dynamo: table already exists")
	ErrConditionFailed    = errors.New("dynamo: conditional check failed")
	ErrItemNotFound       = errors.New("dynamo: item not found")
	ErrEmptyPartitionKey  = errors.New("dynamo: empty partition key")
	ErrReservedAttrPrefix = errors.New("dynamo: attribute names must not start with '_'")
)

// Item is a stored record: a partition key plus string attributes.
type Item struct {
	Key   string
	Attrs map[string]string
}

func (it Item) clone() Item {
	cp := Item{Key: it.Key, Attrs: make(map[string]string, len(it.Attrs))}
	for k, v := range it.Attrs {
		cp.Attrs[k] = v
	}
	return cp
}

// Store is the simulated key-value service.
type Store struct {
	ledger *cost.Ledger
	tables map[string]map[string]Item
	fault  FaultFunc

	reads, writes int64
}

// New returns an empty store charging the ledger.
func New(ledger *cost.Ledger) *Store {
	return &Store{ledger: ledger, tables: make(map[string]map[string]Item)}
}

// SetFault installs a fault interceptor consulted at the top of every
// data-plane call; nil (the default) disables injection.
func (s *Store) SetFault(fn FaultFunc) { s.fault = fn }

func (s *Store) injected(op string) error {
	if s.fault == nil {
		return nil
	}
	return s.fault(op, "")
}

// CreateTable creates an empty table.
func (s *Store) CreateTable(name string) error {
	if _, ok := s.tables[name]; ok {
		return fmt.Errorf("create table %q: %w", name, ErrTableExists)
	}
	s.tables[name] = make(map[string]Item)
	return nil
}

func (s *Store) table(name string) (map[string]Item, error) {
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("table %q: %w", name, ErrNoSuchTable)
	}
	return t, nil
}

func validate(it Item) error {
	if it.Key == "" {
		return ErrEmptyPartitionKey
	}
	// Checked in sorted order so an item with several reserved
	// attributes reports the same one on every run.
	names := make([]string, 0, len(it.Attrs))
	for k := range it.Attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if strings.HasPrefix(k, "_") {
			return fmt.Errorf("attribute %q: %w", k, ErrReservedAttrPrefix)
		}
	}
	return nil
}

// Put writes an item unconditionally.
func (s *Store) Put(tableName string, it Item) error {
	if err := s.injected("put"); err != nil {
		return fmt.Errorf("put %s/%s: %w", tableName, it.Key, err)
	}
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	if err := validate(it); err != nil {
		return err
	}
	t[it.Key] = it.clone()
	s.writes++
	s.ledger.MustAdd(cost.CategoryDynamoDB, cost.DynamoWriteUSD)
	return nil
}

// PutIfAbsent writes the item only if the key does not exist yet.
func (s *Store) PutIfAbsent(tableName string, it Item) error {
	if err := s.injected("put-if-absent"); err != nil {
		return fmt.Errorf("put-if-absent %s/%s: %w", tableName, it.Key, err)
	}
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	if err := validate(it); err != nil {
		return err
	}
	s.writes++
	s.ledger.MustAdd(cost.CategoryDynamoDB, cost.DynamoWriteUSD)
	if _, exists := t[it.Key]; exists {
		return fmt.Errorf("put-if-absent %s/%s: %w", tableName, it.Key, ErrConditionFailed)
	}
	t[it.Key] = it.clone()
	return nil
}

// UpdateIf writes the item only if attribute attr currently equals want.
// A missing item never matches.
func (s *Store) UpdateIf(tableName string, it Item, attr, want string) error {
	if err := s.injected("update-if"); err != nil {
		return fmt.Errorf("update-if %s/%s: %w", tableName, it.Key, err)
	}
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	if err := validate(it); err != nil {
		return err
	}
	s.writes++
	s.ledger.MustAdd(cost.CategoryDynamoDB, cost.DynamoWriteUSD)
	cur, ok := t[it.Key]
	if !ok || cur.Attrs[attr] != want {
		return fmt.Errorf("update-if %s/%s: %w", tableName, it.Key, ErrConditionFailed)
	}
	t[it.Key] = it.clone()
	return nil
}

// UpdateIfAll writes the item only if every attribute named in conds
// currently equals its expected value — a multi-attribute conditional
// write, the primitive behind lease fencing (the condition covers both
// the holder and the fencing token, so a deposed holder's write loses
// even if the lease has since been re-acquired under its old name). A
// missing item never matches. Conditions are checked in sorted
// attribute order so a multiply-failing condition reports the same
// attribute on every run.
func (s *Store) UpdateIfAll(tableName string, it Item, conds map[string]string) error {
	if err := s.injected("update-if-all"); err != nil {
		return fmt.Errorf("update-if-all %s/%s: %w", tableName, it.Key, err)
	}
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	if err := validate(it); err != nil {
		return err
	}
	s.writes++
	s.ledger.MustAdd(cost.CategoryDynamoDB, cost.DynamoWriteUSD)
	cur, ok := t[it.Key]
	if !ok {
		return fmt.Errorf("update-if-all %s/%s: %w", tableName, it.Key, ErrConditionFailed)
	}
	names := make([]string, 0, len(conds))
	for k := range conds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if cur.Attrs[k] != conds[k] {
			return fmt.Errorf("update-if-all %s/%s attr %q: %w", tableName, it.Key, k, ErrConditionFailed)
		}
	}
	t[it.Key] = it.clone()
	return nil
}

// Get reads an item by key.
func (s *Store) Get(tableName, key string) (Item, error) {
	if err := s.injected("get"); err != nil {
		return Item{}, fmt.Errorf("get %s/%s: %w", tableName, key, err)
	}
	t, err := s.table(tableName)
	if err != nil {
		return Item{}, err
	}
	s.reads++
	s.ledger.MustAdd(cost.CategoryDynamoDB, cost.DynamoReadUSD)
	it, ok := t[key]
	if !ok {
		return Item{}, fmt.Errorf("get %s/%s: %w", tableName, key, ErrItemNotFound)
	}
	return it.clone(), nil
}

// Delete removes an item; deleting a missing key is a no-op.
func (s *Store) Delete(tableName, key string) error {
	if err := s.injected("delete"); err != nil {
		return fmt.Errorf("delete %s/%s: %w", tableName, key, err)
	}
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	s.writes++
	s.ledger.MustAdd(cost.CategoryDynamoDB, cost.DynamoWriteUSD)
	delete(t, key)
	return nil
}

// Scan returns items whose keys carry the prefix, ordered by key.
func (s *Store) Scan(tableName, keyPrefix string) ([]Item, error) {
	if err := s.injected("scan"); err != nil {
		return nil, fmt.Errorf("scan %s: %w", tableName, err)
	}
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	var out []Item
	for k, it := range t {
		if strings.HasPrefix(k, keyPrefix) {
			out = append(out, it.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	s.reads += int64(len(out))
	s.ledger.MustAdd(cost.CategoryDynamoDB, cost.DynamoReadUSD*float64(len(out)))
	return out, nil
}

// Stats reports request counters.
func (s *Store) Stats() (reads, writes int64) { return s.reads, s.writes }
