package efs

import (
	"errors"
	"testing"

	"spotverse/internal/catalog"
	"spotverse/internal/cost"
)

func newService() (*Service, *cost.Ledger) {
	l := cost.NewLedger()
	return New(catalog.Default(), l), l
}

func TestCreateAndMount(t *testing.T) {
	s, _ := newService()
	if err := s.Create("ckpt", "us-east-1"); err != nil {
		t.Fatal(err)
	}
	if !s.Mounted("ckpt", "us-east-1") {
		t.Fatal("home region not mounted")
	}
	if s.Mounted("ckpt", "eu-north-1") {
		t.Fatal("unreplicated region mounted")
	}
	if err := s.Create("ckpt", "us-east-1"); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Create("bad", "narnia-1"); err == nil {
		t.Fatal("unknown region should error")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s, l := newService()
	_ = s.Create("ckpt", "us-east-1")
	if err := s.WriteSized("ckpt", "w1", 1<<30, "us-east-1"); err != nil {
		t.Fatal(err)
	}
	size, err := s.ReadSized("ckpt", "w1", "us-east-1")
	if err != nil || size != 1<<30 {
		t.Fatalf("size=%d err=%v", size, err)
	}
	want := cost.EFSWriteUSDPerGB + cost.EFSStorageUSDPerGBMonth/30 + cost.EFSReadUSDPerGB
	if got := l.Of(cost.CategoryEFS); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("billed %v, want %v", got, want)
	}
}

func TestAccessRequiresReplica(t *testing.T) {
	s, _ := newService()
	_ = s.Create("ckpt", "us-east-1")
	if err := s.WriteSized("ckpt", "w1", 100, "eu-north-1"); !errors.Is(err, ErrNotMounted) {
		t.Fatalf("err = %v", err)
	}
	_ = s.WriteSized("ckpt", "w1", 100, "us-east-1")
	if _, err := s.ReadSized("ckpt", "w1", "eu-north-1"); !errors.Is(err, ErrNotMounted) {
		t.Fatalf("err = %v", err)
	}
}

func TestReplicationEnablesAccessAndCharges(t *testing.T) {
	s, l := newService()
	_ = s.Create("ckpt", "us-east-1")
	_ = s.WriteSized("ckpt", "w1", 1<<30, "us-east-1")
	before := l.Of(cost.CategoryEFS)
	if err := s.Replicate("ckpt", "eu-north-1"); err != nil {
		t.Fatal(err)
	}
	if got := l.Of(cost.CategoryEFS) - before; got < cost.EFSReplicationUSDPerGB-1e-9 {
		t.Fatalf("replication charged %v", got)
	}
	if _, err := s.ReadSized("ckpt", "w1", "eu-north-1"); err != nil {
		t.Fatal(err)
	}
	// Re-replicating the same region is an error.
	if err := s.Replicate("ckpt", "eu-north-1"); !errors.Is(err, ErrHomeReplica) {
		t.Fatalf("err = %v", err)
	}
	replicas, err := s.Replicas("ckpt")
	if err != nil || len(replicas) != 2 {
		t.Fatalf("replicas = %v err = %v", replicas, err)
	}
}

func TestWriteFansOutToReplicas(t *testing.T) {
	s, l := newService()
	_ = s.Create("ckpt", "us-east-1")
	_ = s.Replicate("ckpt", "eu-north-1")
	_ = s.Replicate("ckpt", "ap-northeast-3")
	before := l.Of(cost.CategoryEFS)
	_ = s.WriteSized("ckpt", "w1", 1<<30, "us-east-1")
	delta := l.Of(cost.CategoryEFS) - before
	want := cost.EFSWriteUSDPerGB + cost.EFSStorageUSDPerGBMonth/30 + 2*cost.EFSReplicationUSDPerGB
	if delta < want-1e-9 || delta > want+1e-9 {
		t.Fatalf("write with 2 replicas billed %v, want %v", delta, want)
	}
}

func TestErrors(t *testing.T) {
	s, _ := newService()
	if err := s.WriteSized("nope", "p", 1, "us-east-1"); !errors.Is(err, ErrNoSuchFS) {
		t.Fatalf("err = %v", err)
	}
	_ = s.Create("ckpt", "us-east-1")
	if err := s.WriteSized("ckpt", "p", -1, "us-east-1"); !errors.Is(err, ErrNegSize) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.ReadSized("ckpt", "missing", "us-east-1"); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Replicate("ckpt", "narnia-1"); !errors.Is(err, ErrBadReplica) {
		t.Fatalf("err = %v", err)
	}
	if s.Exists("nope", "p") || s.Exists("ckpt", "missing") {
		t.Fatal("exists wrong")
	}
	_ = s.WriteSized("ckpt", "p", 5, "us-east-1")
	if !s.Exists("ckpt", "p") {
		t.Fatal("exists wrong after write")
	}
}
