// Package efs simulates an Elastic-File-System-like regional file store —
// the storage alternative the paper's future-work section proposes for
// checkpoints, trading S3's cross-region transfer fees for pricier
// storage and throughput plus explicit replication.
//
// A file system is homed in one region and only mountable there until it
// is replicated; replication charges cross-region transfer for existing
// bytes and keeps subsequent writes in sync.
package efs

import (
	"errors"
	"fmt"
	"sort"

	"spotverse/internal/catalog"
	"spotverse/internal/cost"
)

// Errors returned by the service.
var (
	ErrExists      = errors.New("efs: file system already exists")
	ErrNoSuchFS    = errors.New("efs: no such file system")
	ErrNoSuchFile  = errors.New("efs: no such file")
	ErrNotMounted  = errors.New("efs: file system has no replica in region")
	ErrNegSize     = errors.New("efs: negative size")
	ErrBadReplica  = errors.New("efs: unknown replica region")
	ErrHomeReplica = errors.New("efs: region already holds a replica")
)

type fileSystem struct {
	home     catalog.Region
	replicas map[catalog.Region]bool
	files    map[string]int64 // path -> bytes
}

// FaultFunc decides whether one API call fails with an injected fault
// (nil = healthy). Installed via SetFault; see internal/chaos.
type FaultFunc func(op string, region catalog.Region) error

// Service is the simulated EFS control plane.
type Service struct {
	cat    *catalog.Catalog
	ledger *cost.Ledger
	fss    map[string]*fileSystem
	fault  FaultFunc
}

// SetFault installs a fault interceptor consulted at the top of the
// data-plane calls; nil (the default) disables injection.
func (s *Service) SetFault(fn FaultFunc) { s.fault = fn }

func (s *Service) injected(op string, region catalog.Region) error {
	if s.fault == nil {
		return nil
	}
	return s.fault(op, region)
}

// New returns an empty service charging the ledger.
func New(cat *catalog.Catalog, ledger *cost.Ledger) *Service {
	return &Service{cat: cat, ledger: ledger, fss: make(map[string]*fileSystem)}
}

// Create makes a file system homed in region.
func (s *Service) Create(name string, region catalog.Region) error {
	if _, ok := s.fss[name]; ok {
		return fmt.Errorf("create %q: %w", name, ErrExists)
	}
	if _, err := s.cat.RegionInfo(region); err != nil {
		return fmt.Errorf("create %q: %w", name, err)
	}
	s.fss[name] = &fileSystem{
		home:     region,
		replicas: map[catalog.Region]bool{region: true},
		files:    make(map[string]int64),
	}
	return nil
}

func (s *Service) fs(name string) (*fileSystem, error) {
	fs, ok := s.fss[name]
	if !ok {
		return nil, fmt.Errorf("fs %q: %w", name, ErrNoSuchFS)
	}
	return fs, nil
}

// Replicate adds a replica region, charging replication transfer for the
// bytes already stored.
func (s *Service) Replicate(name string, to catalog.Region) error {
	if err := s.injected("replicate", to); err != nil {
		return fmt.Errorf("replicate %q to %s: %w", name, to, err)
	}
	fs, err := s.fs(name)
	if err != nil {
		return err
	}
	if _, err := s.cat.RegionInfo(to); err != nil {
		return fmt.Errorf("replicate %q: %w", name, ErrBadReplica)
	}
	if fs.replicas[to] {
		return fmt.Errorf("replicate %q to %s: %w", name, to, ErrHomeReplica)
	}
	var total int64
	for _, n := range fs.files {
		total += n
	}
	s.ledger.MustAdd(cost.CategoryEFS, gb(total)*cost.EFSReplicationUSDPerGB)
	fs.replicas[to] = true
	return nil
}

// Mounted reports whether the file system is accessible from region.
func (s *Service) Mounted(name string, region catalog.Region) bool {
	fs, err := s.fs(name)
	if err != nil {
		return false
	}
	return fs.replicas[region]
}

// Replicas lists replica regions, sorted.
func (s *Service) Replicas(name string) ([]catalog.Region, error) {
	fs, err := s.fs(name)
	if err != nil {
		return nil, err
	}
	out := make([]catalog.Region, 0, len(fs.replicas))
	for r := range fs.replicas {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// WriteSized stores size bytes under path, writing from the given region
// (which must hold a replica). Charges write throughput, storage, and
// replication fan-out to the other replicas.
func (s *Service) WriteSized(name, path string, size int64, from catalog.Region) error {
	if size < 0 {
		return fmt.Errorf("write %s/%s: %w", name, path, ErrNegSize)
	}
	if err := s.injected("write-sized", from); err != nil {
		return fmt.Errorf("write %s/%s: %w", name, path, err)
	}
	fs, err := s.fs(name)
	if err != nil {
		return err
	}
	if !fs.replicas[from] {
		return fmt.Errorf("write %s/%s from %s: %w", name, path, from, ErrNotMounted)
	}
	fs.files[path] = size
	s.ledger.MustAdd(cost.CategoryEFS, gb(size)*cost.EFSWriteUSDPerGB)
	s.ledger.MustAdd(cost.CategoryEFS, gb(size)*cost.EFSStorageUSDPerGBMonth/30)
	if extra := len(fs.replicas) - 1; extra > 0 {
		s.ledger.MustAdd(cost.CategoryEFS, gb(size)*cost.EFSReplicationUSDPerGB*float64(extra))
	}
	return nil
}

// ReadSized reads path from the given region (which must hold a replica),
// charging read throughput. It returns the stored size.
func (s *Service) ReadSized(name, path string, from catalog.Region) (int64, error) {
	if err := s.injected("read-sized", from); err != nil {
		return 0, fmt.Errorf("read %s/%s: %w", name, path, err)
	}
	fs, err := s.fs(name)
	if err != nil {
		return 0, err
	}
	if !fs.replicas[from] {
		return 0, fmt.Errorf("read %s/%s from %s: %w", name, path, from, ErrNotMounted)
	}
	size, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("read %s/%s: %w", name, path, ErrNoSuchFile)
	}
	s.ledger.MustAdd(cost.CategoryEFS, gb(size)*cost.EFSReadUSDPerGB)
	return size, nil
}

// Exists reports whether path is stored (no charge).
func (s *Service) Exists(name, path string) bool {
	fs, err := s.fs(name)
	if err != nil {
		return false
	}
	_, ok := fs.files[path]
	return ok
}

func gb(n int64) float64 { return float64(n) / (1 << 30) }
