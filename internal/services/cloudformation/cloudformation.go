// Package cloudformation simulates the infrastructure-as-code layer the
// paper deploys SpotVerse with (Section 4): declarative stacks of typed
// resources with dependencies, created in topological order, rolled back
// on failure, and deletable as a unit.
//
// Templates are JSON documents:
//
//	{
//	  "name": "spotverse",
//	  "resources": [
//	    {"id": "MetricsTable", "type": "DynamoDB::Table",
//	     "properties": {"name": "spotverse-metrics"}},
//	    {"id": "Collector", "type": "Lambda::Function",
//	     "dependsOn": ["MetricsTable"],
//	     "properties": {"name": "collector", "memoryMB": "128"}}
//	  ]
//	}
//
// Resource provisioning is pluggable: the engine resolves ordering and
// lifecycle; a ResourceProvider per type performs the create/delete.
package cloudformation

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"spotverse/internal/catalog"
)

// Errors returned by the engine.
var (
	ErrStackExists    = errors.New("cloudformation: stack already exists")
	ErrNoSuchStack    = errors.New("cloudformation: no such stack")
	ErrDupResource    = errors.New("cloudformation: duplicate resource id")
	ErrUnknownType    = errors.New("cloudformation: no provider for resource type")
	ErrUnknownDep     = errors.New("cloudformation: dependsOn references unknown resource")
	ErrCycle          = errors.New("cloudformation: dependency cycle")
	ErrCreateFailed   = errors.New("cloudformation: resource creation failed")
	ErrRollbackFailed = errors.New("cloudformation: rollback failed")
)

// Resource is one declared resource.
type Resource struct {
	ID         string            `json:"id"`
	Type       string            `json:"type"`
	DependsOn  []string          `json:"dependsOn,omitempty"`
	Properties map[string]string `json:"properties,omitempty"`
}

// Template is a declared stack.
type Template struct {
	Name      string     `json:"name"`
	Resources []Resource `json:"resources"`
}

// ParseTemplate reads a JSON template.
func ParseTemplate(data []byte) (*Template, error) {
	var t Template
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("cloudformation: parse: %w", err)
	}
	if t.Name == "" {
		return nil, errors.New("cloudformation: template needs a name")
	}
	return &t, nil
}

// ResourceProvider creates and deletes resources of one type.
type ResourceProvider interface {
	// Create provisions the resource and returns an opaque physical ID.
	Create(r Resource) (string, error)
	// Delete removes the resource by physical ID.
	Delete(physicalID string) error
}

// ProviderFunc adapts create/delete funcs to ResourceProvider.
type ProviderFunc struct {
	CreateFn func(r Resource) (string, error)
	DeleteFn func(physicalID string) error
}

// Create implements ResourceProvider.
func (p ProviderFunc) Create(r Resource) (string, error) {
	if p.CreateFn == nil {
		return "", fmt.Errorf("%w: nil create", ErrUnknownType)
	}
	return p.CreateFn(r)
}

// Delete implements ResourceProvider.
func (p ProviderFunc) Delete(physicalID string) error {
	if p.DeleteFn == nil {
		return nil
	}
	return p.DeleteFn(physicalID)
}

// StackStatus tracks a stack's lifecycle.
type StackStatus string

// Stack statuses, mirroring CloudFormation's vocabulary.
const (
	StatusCreateComplete StackStatus = "CREATE_COMPLETE"
	StatusRollbackDone   StackStatus = "ROLLBACK_COMPLETE"
	StatusDeleted        StackStatus = "DELETE_COMPLETE"
)

// deployed is one provisioned resource.
type deployed struct {
	resource   Resource
	physicalID string
}

// Stack is a provisioned template.
type Stack struct {
	Name   string
	Status StackStatus

	// creation order, for reverse-order deletion.
	created []deployed
}

// PhysicalID looks up a resource's physical ID by logical ID.
func (s *Stack) PhysicalID(logicalID string) (string, bool) {
	for _, d := range s.created {
		if d.resource.ID == logicalID {
			return d.physicalID, true
		}
	}
	return "", false
}

// Resources lists the provisioned logical IDs in creation order.
func (s *Stack) Resources() []string {
	out := make([]string, len(s.created))
	for i, d := range s.created {
		out[i] = d.resource.ID
	}
	return out
}

// FaultFunc decides whether one API call fails with an injected fault
// (nil = healthy). Installed via SetFault; see internal/chaos.
type FaultFunc func(op string, region catalog.Region) error

// Engine deploys stacks using registered providers.
type Engine struct {
	providers map[string]ResourceProvider
	stacks    map[string]*Stack
	fault     FaultFunc
}

// SetFault installs a fault interceptor on CreateStack; nil (the
// default) disables injection.
func (e *Engine) SetFault(fn FaultFunc) { e.fault = fn }

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{
		providers: make(map[string]ResourceProvider),
		stacks:    make(map[string]*Stack),
	}
}

// RegisterProvider binds a resource type to its provider.
func (e *Engine) RegisterProvider(resourceType string, p ResourceProvider) {
	e.providers[resourceType] = p
}

// order topologically sorts resources by dependsOn, deterministic.
func order(resources []Resource) ([]int, error) {
	idx := make(map[string]int, len(resources))
	for i, r := range resources {
		if _, ok := idx[r.ID]; ok {
			return nil, fmt.Errorf("%w: %q", ErrDupResource, r.ID)
		}
		idx[r.ID] = i
	}
	adj := make([][]int, len(resources))
	indeg := make([]int, len(resources))
	for i, r := range resources {
		for _, dep := range r.DependsOn {
			j, ok := idx[dep]
			if !ok {
				return nil, fmt.Errorf("%w: %q -> %q", ErrUnknownDep, r.ID, dep)
			}
			adj[j] = append(adj[j], i)
			indeg[i]++
		}
	}
	ready := make([]int, 0, len(resources))
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	var out []int
	for len(ready) > 0 {
		sort.Ints(ready)
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		for _, m := range adj[n] {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
	}
	if len(out) != len(resources) {
		return nil, ErrCycle
	}
	return out, nil
}

// CreateStack provisions a template. On any resource failure, already
// created resources are deleted in reverse order and the error is
// returned (rollback semantics).
func (e *Engine) CreateStack(t *Template) (*Stack, error) {
	if e.fault != nil {
		if err := e.fault("create-stack", ""); err != nil {
			return nil, fmt.Errorf("create %q: %w", t.Name, err)
		}
	}
	if _, ok := e.stacks[t.Name]; ok {
		return nil, fmt.Errorf("create %q: %w", t.Name, ErrStackExists)
	}
	for _, r := range t.Resources {
		if _, ok := e.providers[r.Type]; !ok {
			return nil, fmt.Errorf("create %q resource %q: %w: %q", t.Name, r.ID, ErrUnknownType, r.Type)
		}
	}
	seq, err := order(t.Resources)
	if err != nil {
		return nil, fmt.Errorf("create %q: %w", t.Name, err)
	}
	stack := &Stack{Name: t.Name}
	for _, i := range seq {
		r := t.Resources[i]
		phys, err := e.providers[r.Type].Create(r)
		if err != nil {
			rbErr := e.rollback(stack)
			if rbErr != nil {
				return nil, fmt.Errorf("create %q resource %q: %w: %w (then %w)", t.Name, r.ID, ErrCreateFailed, err, rbErr)
			}
			stack.Status = StatusRollbackDone
			return nil, fmt.Errorf("create %q resource %q: %w: %w", t.Name, r.ID, ErrCreateFailed, err)
		}
		stack.created = append(stack.created, deployed{resource: r, physicalID: phys})
	}
	stack.Status = StatusCreateComplete
	e.stacks[t.Name] = stack
	return stack, nil
}

func (e *Engine) rollback(stack *Stack) error {
	var firstErr error
	for i := len(stack.created) - 1; i >= 0; i-- {
		d := stack.created[i]
		if err := e.providers[d.resource.Type].Delete(d.physicalID); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%w: %q: %w", ErrRollbackFailed, d.resource.ID, err)
		}
	}
	stack.created = nil
	return firstErr
}

// DeleteStack removes a stack's resources in reverse creation order.
func (e *Engine) DeleteStack(name string) error {
	stack, ok := e.stacks[name]
	if !ok {
		return fmt.Errorf("delete %q: %w", name, ErrNoSuchStack)
	}
	if err := e.rollback(stack); err != nil {
		return err
	}
	stack.Status = StatusDeleted
	delete(e.stacks, name)
	return nil
}

// Stack returns a deployed stack by name.
func (e *Engine) Stack(name string) (*Stack, error) {
	s, ok := e.stacks[name]
	if !ok {
		return nil, fmt.Errorf("stack %q: %w", name, ErrNoSuchStack)
	}
	return s, nil
}

// Stacks lists deployed stack names, sorted.
func (e *Engine) Stacks() []string {
	out := make([]string, 0, len(e.stacks))
	for name := range e.stacks {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
