package cloudformation

import (
	"errors"
	"fmt"
	"testing"
)

// recorder is a test provider tracking create/delete calls.
type recorder struct {
	created []string
	deleted []string
	failOn  string
}

func (r *recorder) provider(kind string) ResourceProvider {
	return ProviderFunc{
		CreateFn: func(res Resource) (string, error) {
			if res.ID == r.failOn {
				return "", errors.New("injected failure")
			}
			phys := kind + "/" + res.ID
			r.created = append(r.created, phys)
			return phys, nil
		},
		DeleteFn: func(physicalID string) error {
			r.deleted = append(r.deleted, physicalID)
			return nil
		},
	}
}

func template() *Template {
	return &Template{
		Name: "spotverse",
		Resources: []Resource{
			{ID: "Handler", Type: "Lambda::Function", DependsOn: []string{"Table", "Bucket"}},
			{ID: "Table", Type: "DynamoDB::Table"},
			{ID: "Bucket", Type: "S3::Bucket"},
			{ID: "Rule", Type: "Events::Rule", DependsOn: []string{"Handler"}},
		},
	}
}

func newEngine(rec *recorder) *Engine {
	e := NewEngine()
	for _, kind := range []string{"Lambda::Function", "DynamoDB::Table", "S3::Bucket", "Events::Rule"} {
		e.RegisterProvider(kind, rec.provider(kind))
	}
	return e
}

func TestCreateStackRespectsDependencies(t *testing.T) {
	rec := &recorder{}
	e := newEngine(rec)
	stack, err := e.CreateStack(template())
	if err != nil {
		t.Fatal(err)
	}
	if stack.Status != StatusCreateComplete {
		t.Fatalf("status = %v", stack.Status)
	}
	pos := map[string]int{}
	for i, id := range stack.Resources() {
		pos[id] = i
	}
	if pos["Handler"] < pos["Table"] || pos["Handler"] < pos["Bucket"] || pos["Rule"] < pos["Handler"] {
		t.Fatalf("order = %v", stack.Resources())
	}
	phys, ok := stack.PhysicalID("Table")
	if !ok || phys != "DynamoDB::Table/Table" {
		t.Fatalf("physical id = %q ok=%v", phys, ok)
	}
	if _, ok := stack.PhysicalID("Nope"); ok {
		t.Fatal("unknown logical id resolved")
	}
}

func TestCreateFailureRollsBack(t *testing.T) {
	rec := &recorder{failOn: "Handler"}
	e := newEngine(rec)
	_, err := e.CreateStack(template())
	if !errors.Is(err, ErrCreateFailed) {
		t.Fatalf("err = %v", err)
	}
	// Table and Bucket were created first and must have been deleted in
	// reverse order.
	if len(rec.created) != 2 || len(rec.deleted) != 2 {
		t.Fatalf("created=%v deleted=%v", rec.created, rec.deleted)
	}
	if rec.deleted[0] != rec.created[1] || rec.deleted[1] != rec.created[0] {
		t.Fatalf("rollback order wrong: created=%v deleted=%v", rec.created, rec.deleted)
	}
	if len(e.Stacks()) != 0 {
		t.Fatal("failed stack registered")
	}
}

func TestDeleteStackReverseOrder(t *testing.T) {
	rec := &recorder{}
	e := newEngine(rec)
	stack, err := e.CreateStack(template())
	if err != nil {
		t.Fatal(err)
	}
	created := append([]string{}, rec.created...)
	if err := e.DeleteStack("spotverse"); err != nil {
		t.Fatal(err)
	}
	if stack.Status != StatusDeleted {
		t.Fatalf("status = %v", stack.Status)
	}
	if len(rec.deleted) != len(created) {
		t.Fatalf("deleted %d of %d", len(rec.deleted), len(created))
	}
	for i := range created {
		if rec.deleted[i] != created[len(created)-1-i] {
			t.Fatalf("delete order: %v vs created %v", rec.deleted, created)
		}
	}
	if err := e.DeleteStack("spotverse"); !errors.Is(err, ErrNoSuchStack) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	rec := &recorder{}
	e := newEngine(rec)
	if _, err := e.CreateStack(&Template{Name: "x", Resources: []Resource{{ID: "a", Type: "Quantum::Tunnel"}}}); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v", err)
	}
	dup := &Template{Name: "x", Resources: []Resource{
		{ID: "a", Type: "S3::Bucket"}, {ID: "a", Type: "S3::Bucket"},
	}}
	if _, err := e.CreateStack(dup); !errors.Is(err, ErrDupResource) {
		t.Fatalf("err = %v", err)
	}
	badDep := &Template{Name: "x", Resources: []Resource{
		{ID: "a", Type: "S3::Bucket", DependsOn: []string{"ghost"}},
	}}
	if _, err := e.CreateStack(badDep); !errors.Is(err, ErrUnknownDep) {
		t.Fatalf("err = %v", err)
	}
	cyclic := &Template{Name: "x", Resources: []Resource{
		{ID: "a", Type: "S3::Bucket", DependsOn: []string{"b"}},
		{ID: "b", Type: "S3::Bucket", DependsOn: []string{"a"}},
	}}
	if _, err := e.CreateStack(cyclic); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.CreateStack(template()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateStack(template()); !errors.Is(err, ErrStackExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseTemplate(t *testing.T) {
	data := []byte(`{
	  "name": "demo",
	  "resources": [
	    {"id": "T", "type": "DynamoDB::Table", "properties": {"name": "metrics"}},
	    {"id": "F", "type": "Lambda::Function", "dependsOn": ["T"]}
	  ]
	}`)
	tpl, err := ParseTemplate(data)
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Name != "demo" || len(tpl.Resources) != 2 || tpl.Resources[0].Properties["name"] != "metrics" {
		t.Fatalf("tpl = %+v", tpl)
	}
	if _, err := ParseTemplate([]byte("{bad")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseTemplate([]byte(`{"resources":[]}`)); err == nil {
		t.Fatal("nameless template accepted")
	}
}

func TestDeterministicOrderForIndependentResources(t *testing.T) {
	tpl := &Template{Name: "flat"}
	for i := 0; i < 6; i++ {
		tpl.Resources = append(tpl.Resources, Resource{ID: fmt.Sprintf("r%d", i), Type: "S3::Bucket"})
	}
	rec := &recorder{}
	e := newEngine(rec)
	s, err := e.CreateStack(tpl)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Resources()
	for i, id := range got {
		if id != fmt.Sprintf("r%d", i) {
			t.Fatalf("order = %v, want declaration order", got)
		}
	}
}
