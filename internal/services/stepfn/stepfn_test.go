package stepfn

import (
	"errors"
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/cost"
	"spotverse/internal/simclock"
)

func newMachine(cfg Config) (*simclock.Engine, *Machine, *cost.Ledger) {
	eng := simclock.NewEngine()
	l := cost.NewLedger()
	return eng, MustNew(eng, l, cfg), l
}

func TestSuccessFirstTry(t *testing.T) {
	eng, m, _ := newMachine(Config{})
	var final error = errors.New("sentinel")
	_ = m.Execute("x", func() error { return nil }, func(err error) { final = err })
	_ = eng.Run(time.Time{})
	if final != nil {
		t.Fatalf("final = %v, want nil", final)
	}
	_, transitions, exhausted := m.Stats()
	if transitions != 1 || exhausted != 0 {
		t.Fatalf("transitions=%d exhausted=%d", transitions, exhausted)
	}
}

func TestRetriesUntilSuccess(t *testing.T) {
	eng, m, _ := newMachine(Config{MaxAttempts: 5, BaseBackoff: time.Minute, BackoffRate: 2})
	tries := 0
	var doneAt time.Time
	_ = m.Execute("x", func() error {
		tries++
		if tries < 3 {
			return errors.New("flaky")
		}
		return nil
	}, func(err error) {
		if err != nil {
			t.Errorf("final err = %v", err)
		}
		doneAt = eng.Now()
	})
	_ = eng.Run(time.Time{})
	if tries != 3 {
		t.Fatalf("tries = %d, want 3", tries)
	}
	// Backoff: 1m before try 2, 2m before try 3.
	want := simclock.Epoch.Add(3 * time.Minute)
	if !doneAt.Equal(want) {
		t.Fatalf("done at %v, want %v", doneAt, want)
	}
}

func TestExhaustionWrapsError(t *testing.T) {
	eng, m, _ := newMachine(Config{MaxAttempts: 2, BaseBackoff: time.Second})
	boom := errors.New("boom")
	var final error
	_ = m.Execute("x", func() error { return boom }, func(err error) { final = err })
	_ = eng.Run(time.Time{})
	if !errors.Is(final, ErrAttemptsExceeded) || !errors.Is(final, boom) {
		t.Fatalf("final = %v, want wrapped ErrAttemptsExceeded+boom", final)
	}
	_, _, exhausted := m.Stats()
	if exhausted != 1 {
		t.Fatalf("exhausted = %d", exhausted)
	}
}

func TestNilTaskRejected(t *testing.T) {
	_, m, _ := newMachine(Config{})
	if err := m.Execute("x", nil, nil); !errors.Is(err, ErrNilTask) {
		t.Fatalf("err = %v", err)
	}
}

func TestDefaultsNormalized(t *testing.T) {
	cfg := Config{}.normalized()
	if cfg.MaxAttempts != 3 || cfg.BaseBackoff != 30*time.Second || cfg.BackoffRate != 2.0 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	eng := simclock.NewEngine()
	l := cost.NewLedger()
	bad := []Config{
		{MaxAttempts: -1},
		{BackoffRate: 0.5},
		{BaseBackoff: -time.Second},
		{Jitter: -0.1},
		{Jitter: 1},
	}
	for _, cfg := range bad {
		if _, err := New(eng, l, cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("New(%+v) err = %v, want ErrBadConfig", cfg, err)
		}
	}
	if _, err := New(eng, l, Config{MaxAttempts: 4, BackoffRate: 1.5, Jitter: 0.3}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestJitterShortensBackoff(t *testing.T) {
	eng, m, _ := newMachine(Config{MaxAttempts: 4, BaseBackoff: time.Minute, BackoffRate: 2, Jitter: 0.5, Seed: 9})
	var attempts []time.Time
	_ = m.Execute("x", func() error {
		attempts = append(attempts, eng.Now())
		return errors.New("always")
	}, nil)
	_ = eng.Run(time.Time{})
	if len(attempts) != 4 {
		t.Fatalf("attempts = %d, want 4", len(attempts))
	}
	// Each actual wait is scaled into [1-Jitter, 1] of the exponential
	// schedule, and at least one draw lands strictly below it.
	bases := []time.Duration{time.Minute, 2 * time.Minute, 4 * time.Minute}
	shortened := false
	for i, base := range bases {
		gap := attempts[i+1].Sub(attempts[i])
		if gap > base || gap < base/2 {
			t.Fatalf("gap %d = %v, want in [%v, %v]", i, gap, base/2, base)
		}
		if gap < base {
			shortened = true
		}
	}
	if !shortened {
		t.Fatal("jitter never shortened a wait")
	}
}

func TestJitterZeroKeepsSchedule(t *testing.T) {
	// Jitter 0 must reproduce the pure exponential schedule exactly.
	eng, m, _ := newMachine(Config{MaxAttempts: 3, BaseBackoff: time.Minute, BackoffRate: 2})
	var doneAt time.Time
	_ = m.Execute("x", func() error { return errors.New("always") }, func(error) { doneAt = eng.Now() })
	_ = eng.Run(time.Time{})
	if want := simclock.Epoch.Add(3 * time.Minute); !doneAt.Equal(want) {
		t.Fatalf("done at %v, want %v", doneAt, want)
	}
}

func TestInjectedFaultRejectsExecution(t *testing.T) {
	_, m, _ := newMachine(Config{})
	boom := errors.New("injected")
	m.SetFault(func(op string, _ catalog.Region) error {
		if op != "execute:x" {
			t.Errorf("op = %q", op)
		}
		return boom
	})
	if err := m.Execute("x", func() error { return nil }, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if executions, _, _ := m.Stats(); executions != 0 {
		t.Fatalf("executions = %d, want 0", executions)
	}
}

func TestTransitionsBilled(t *testing.T) {
	eng, m, l := newMachine(Config{MaxAttempts: 3, BaseBackoff: time.Second})
	_ = m.Execute("x", func() error { return errors.New("always") }, nil)
	_ = eng.Run(time.Time{})
	want := 3 * cost.StepFnUSDPerTransition
	if got := l.Of(cost.CategoryStepFn); got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("billed %v, want %v", got, want)
	}
}
