// Package stepfn simulates the Step Functions retry wrapper the paper
// puts around the Controller's interruption-handler Lambda: execute a
// task, and on failure retry with exponential backoff up to a maximum
// attempt count, billing one state transition per attempt.
package stepfn

import (
	"errors"
	"fmt"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/cost"
	"spotverse/internal/simclock"
)

// Errors returned by the machine.
var (
	ErrNilTask          = errors.New("stepfn: nil task")
	ErrAttemptsExceeded = errors.New("stepfn: max attempts exceeded")
	ErrBadConfig        = errors.New("stepfn: invalid config")
)

// Task is one retryable unit. It returns nil on success.
type Task func() error

// FaultFunc decides whether one API call fails with an injected fault
// (nil = healthy). Installed via SetFault; see internal/chaos.
type FaultFunc func(op string, region catalog.Region) error

// Config controls retry behaviour.
type Config struct {
	// MaxAttempts caps total tries (first try included). Zero means 3;
	// negative is rejected.
	MaxAttempts int
	// BaseBackoff is the wait before the second attempt. Zero means 30 s;
	// negative is rejected.
	BaseBackoff time.Duration
	// BackoffRate multiplies the wait per retry. Zero means 2.0; values
	// in (0, 1) are rejected (the backoff must not shrink).
	BackoffRate float64
	// Jitter desynchronises retries: each actual wait is scaled by a
	// uniform factor in [1-Jitter, 1], so simultaneous interruptions do
	// not retry in lockstep. Zero (the default) keeps the pure
	// exponential schedule; values outside [0, 1) are rejected.
	Jitter float64
	// Seed feeds the jitter stream (only used when Jitter > 0).
	Seed int64
}

func (c Config) validate() error {
	if c.MaxAttempts < 0 {
		return fmt.Errorf("%w: MaxAttempts %d < 0", ErrBadConfig, c.MaxAttempts)
	}
	if c.BaseBackoff < 0 {
		return fmt.Errorf("%w: BaseBackoff %v < 0", ErrBadConfig, c.BaseBackoff)
	}
	if c.BackoffRate != 0 && c.BackoffRate < 1 {
		return fmt.Errorf("%w: BackoffRate %g < 1", ErrBadConfig, c.BackoffRate)
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return fmt.Errorf("%w: Jitter %g outside [0, 1)", ErrBadConfig, c.Jitter)
	}
	return nil
}

func (c Config) normalized() Config {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 30 * time.Second
	}
	if c.BackoffRate == 0 {
		c.BackoffRate = 2.0
	}
	return c
}

// Machine executes tasks with retries on the sim clock.
type Machine struct {
	eng    *simclock.Engine
	ledger *cost.Ledger
	cfg    Config
	jitter *simclock.RNG
	fault  FaultFunc

	executions  int64
	transitions int64
	exhausted   int64
}

// New validates the config (zero values take defaults) and returns a
// machine.
func New(eng *simclock.Engine, ledger *cost.Ledger, cfg Config) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Machine{eng: eng, ledger: ledger, cfg: cfg.normalized()}
	if m.cfg.Jitter > 0 {
		m.jitter = simclock.Stream(m.cfg.Seed, "stepfn/jitter")
	}
	return m, nil
}

// MustNew is New for statically-valid configs; it panics on error.
func MustNew(eng *simclock.Engine, ledger *cost.Ledger, cfg Config) *Machine {
	m, err := New(eng, ledger, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// SetFault installs a fault interceptor consulted when an execution
// starts; nil (the default) disables injection.
func (m *Machine) SetFault(fn FaultFunc) { m.fault = fn }

// Execute starts an execution. done (optional) receives nil on success or
// the final error (wrapped in ErrAttemptsExceeded) once retries are
// exhausted.
func (m *Machine) Execute(name string, task Task, done func(error)) error {
	if task == nil {
		return fmt.Errorf("execute %q: %w", name, ErrNilTask)
	}
	return m.ExecuteAsync(name, func(finish func(error)) { finish(task()) }, done)
}

// AsyncTask is a unit whose completion arrives via the finish callback —
// typically a Lambda invocation that lands some simulated seconds later.
// finish must be called exactly once per attempt.
type AsyncTask func(finish func(error))

// ExecuteAsync starts an execution of an asynchronous task with the same
// retry semantics as Execute.
func (m *Machine) ExecuteAsync(name string, task AsyncTask, done func(error)) error {
	if task == nil {
		return fmt.Errorf("execute %q: %w", name, ErrNilTask)
	}
	if m.fault != nil {
		if err := m.fault("execute:"+name, ""); err != nil {
			return fmt.Errorf("execute %q: %w", name, err)
		}
	}
	m.executions++
	var attempt func(n int, wait time.Duration)
	attempt = func(n int, wait time.Duration) {
		m.transitions++
		m.ledger.MustAdd(cost.CategoryStepFn, cost.StepFnUSDPerTransition)
		task(func(err error) {
			if err == nil {
				if done != nil {
					done(nil)
				}
				return
			}
			if n+1 >= m.cfg.MaxAttempts {
				m.exhausted++
				if done != nil {
					done(fmt.Errorf("execution %q after %d attempts: %w: %w", name, n+1, ErrAttemptsExceeded, err))
				}
				return
			}
			sleep := wait
			if m.jitter != nil {
				sleep = time.Duration(float64(wait) * (1 - m.cfg.Jitter*m.jitter.Float64()))
			}
			m.eng.ScheduleAfter(sleep, "stepfn-retry:"+name, func() {
				attempt(n+1, time.Duration(float64(wait)*m.cfg.BackoffRate))
			})
		})
	}
	attempt(0, m.cfg.BaseBackoff)
	return nil
}

// Stats reports execution counters.
func (m *Machine) Stats() (executions, transitions, exhausted int64) {
	return m.executions, m.transitions, m.exhausted
}
