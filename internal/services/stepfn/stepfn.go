// Package stepfn simulates the Step Functions retry wrapper the paper
// puts around the Controller's interruption-handler Lambda: execute a
// task, and on failure retry with exponential backoff up to a maximum
// attempt count, billing one state transition per attempt.
package stepfn

import (
	"errors"
	"fmt"
	"time"

	"spotverse/internal/cost"
	"spotverse/internal/simclock"
)

// Errors returned by the machine.
var (
	ErrNilTask          = errors.New("stepfn: nil task")
	ErrAttemptsExceeded = errors.New("stepfn: max attempts exceeded")
)

// Task is one retryable unit. It returns nil on success.
type Task func() error

// Config controls retry behaviour.
type Config struct {
	// MaxAttempts caps total tries (first try included). Zero means 3.
	MaxAttempts int
	// BaseBackoff is the wait before the second attempt. Zero means 30 s.
	BaseBackoff time.Duration
	// BackoffRate multiplies the wait per retry. Zero means 2.0.
	BackoffRate float64
}

func (c Config) normalized() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 30 * time.Second
	}
	if c.BackoffRate <= 0 {
		c.BackoffRate = 2.0
	}
	return c
}

// Machine executes tasks with retries on the sim clock.
type Machine struct {
	eng    *simclock.Engine
	ledger *cost.Ledger
	cfg    Config

	executions  int64
	transitions int64
	exhausted   int64
}

// New returns a machine with the config (zero values take defaults).
func New(eng *simclock.Engine, ledger *cost.Ledger, cfg Config) *Machine {
	return &Machine{eng: eng, ledger: ledger, cfg: cfg.normalized()}
}

// Execute starts an execution. done (optional) receives nil on success or
// the final error (wrapped in ErrAttemptsExceeded) once retries are
// exhausted.
func (m *Machine) Execute(name string, task Task, done func(error)) error {
	if task == nil {
		return fmt.Errorf("execute %q: %w", name, ErrNilTask)
	}
	return m.ExecuteAsync(name, func(finish func(error)) { finish(task()) }, done)
}

// AsyncTask is a unit whose completion arrives via the finish callback —
// typically a Lambda invocation that lands some simulated seconds later.
// finish must be called exactly once per attempt.
type AsyncTask func(finish func(error))

// ExecuteAsync starts an execution of an asynchronous task with the same
// retry semantics as Execute.
func (m *Machine) ExecuteAsync(name string, task AsyncTask, done func(error)) error {
	if task == nil {
		return fmt.Errorf("execute %q: %w", name, ErrNilTask)
	}
	m.executions++
	var attempt func(n int, wait time.Duration)
	attempt = func(n int, wait time.Duration) {
		m.transitions++
		m.ledger.MustAdd(cost.CategoryStepFn, cost.StepFnUSDPerTransition)
		task(func(err error) {
			if err == nil {
				if done != nil {
					done(nil)
				}
				return
			}
			if n+1 >= m.cfg.MaxAttempts {
				m.exhausted++
				if done != nil {
					done(fmt.Errorf("execution %q after %d attempts: %w: %w", name, n+1, ErrAttemptsExceeded, err))
				}
				return
			}
			m.eng.ScheduleAfter(wait, "stepfn-retry:"+name, func() {
				attempt(n+1, time.Duration(float64(wait)*m.cfg.BackoffRate))
			})
		})
	}
	attempt(0, m.cfg.BaseBackoff)
	return nil
}

// Stats reports execution counters.
func (m *Machine) Stats() (executions, transitions, exhausted int64) {
	return m.executions, m.transitions, m.exhausted
}
