package s3

import (
	"bytes"
	"errors"
	"testing"

	"spotverse/internal/catalog"
	"spotverse/internal/cost"
	"spotverse/internal/simclock"
)

func newStore() (*Store, *cost.Ledger) {
	l := cost.NewLedger()
	return New(simclock.NewEngine(), catalog.Default(), l), l
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := newStore()
	if err := s.CreateBucket("logs", "us-east-1"); err != nil {
		t.Fatal(err)
	}
	data := []byte("hello spot")
	if err := s.Put("logs", "run/1", data, "us-east-1"); err != nil {
		t.Fatal(err)
	}
	obj, err := s.Get("logs", "run/1", "us-east-1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(obj.Data, data) {
		t.Fatalf("data = %q, want %q", obj.Data, data)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s, _ := newStore()
	_ = s.CreateBucket("b", "us-east-1")
	_ = s.Put("b", "k", []byte("abc"), "us-east-1")
	obj, _ := s.Get("b", "k", "us-east-1")
	obj.Data[0] = 'X'
	again, _ := s.Get("b", "k", "us-east-1")
	if string(again.Data) != "abc" {
		t.Fatal("caller mutation leaked into the store")
	}
}

func TestPutCopiesInput(t *testing.T) {
	s, _ := newStore()
	_ = s.CreateBucket("b", "us-east-1")
	data := []byte("abc")
	_ = s.Put("b", "k", data, "us-east-1")
	data[0] = 'X'
	obj, _ := s.Get("b", "k", "us-east-1")
	if string(obj.Data) != "abc" {
		t.Fatal("input mutation leaked into the store")
	}
}

func TestSameRegionTransferFree(t *testing.T) {
	s, l := newStore()
	_ = s.CreateBucket("b", "eu-north-1")
	_ = s.Put("b", "k", make([]byte, 1<<20), "eu-north-1")
	if got := l.Of(cost.CategoryS3Transfer); got != 0 {
		t.Fatalf("same-region transfer charged %v", got)
	}
}

func TestCrossRegionTransferCharged(t *testing.T) {
	s, l := newStore()
	_ = s.CreateBucket("b", "eu-north-1")
	_ = s.Put("b", "k", make([]byte, 1<<20), "eu-west-1") // same continent
	got := l.Of(cost.CategoryS3Transfer)
	want := cost.S3CrossRegionUSDPerGB / 1024
	if diff := got - want; diff < -1e-12 || diff > 1e-12 {
		t.Fatalf("cross-region 1MiB cost = %v, want %v", got, want)
	}
	if s.CrossRegionBytes() != 1<<20 {
		t.Fatalf("cross bytes = %d", s.CrossRegionBytes())
	}
}

func TestCrossContinentDearer(t *testing.T) {
	s, l := newStore()
	_ = s.CreateBucket("b", "eu-north-1")
	_ = s.Put("b", "k", make([]byte, 1<<20), "us-east-1")
	got := l.Of(cost.CategoryS3Transfer)
	want := cost.S3CrossContinentUSDPerGB / 1024
	if diff := got - want; diff < -1e-12 || diff > 1e-12 {
		t.Fatalf("cross-continent 1MiB cost = %v, want %v", got, want)
	}
}

func TestGetChargesTransferToo(t *testing.T) {
	s, l := newStore()
	_ = s.CreateBucket("b", "eu-north-1")
	_ = s.Put("b", "k", make([]byte, 1<<19), "eu-north-1")
	before := l.Of(cost.CategoryS3Transfer)
	if _, err := s.Get("b", "k", "us-east-1"); err != nil {
		t.Fatal(err)
	}
	if l.Of(cost.CategoryS3Transfer) <= before {
		t.Fatal("cross-region GET did not charge transfer")
	}
}

func TestErrors(t *testing.T) {
	s, _ := newStore()
	if err := s.CreateBucket("b", "nowhere-1"); err == nil {
		t.Fatal("unknown region should error")
	}
	_ = s.CreateBucket("b", "us-east-1")
	if err := s.CreateBucket("b", "us-east-1"); !errors.Is(err, ErrBucketExists) {
		t.Fatalf("dup bucket err = %v", err)
	}
	if _, err := s.Get("nope", "k", "us-east-1"); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Get("b", "missing", "us-east-1"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Put("nope", "k", nil, "us-east-1"); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("err = %v", err)
	}
}

func TestListPrefixAndSorted(t *testing.T) {
	s, _ := newStore()
	_ = s.CreateBucket("b", "us-east-1")
	for _, k := range []string{"runs/2", "runs/1", "logs/x", "runs/3"} {
		_ = s.Put("b", k, []byte("v"), "us-east-1")
	}
	keys, err := s.List("b", "runs/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"runs/1", "runs/2", "runs/3"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestDeleteIdempotent(t *testing.T) {
	s, _ := newStore()
	_ = s.CreateBucket("b", "us-east-1")
	_ = s.Put("b", "k", []byte("v"), "us-east-1")
	if err := s.Delete("b", "k"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("b", "k"); err != nil {
		t.Fatal("second delete should be a no-op")
	}
	if s.Exists("b", "k") {
		t.Fatal("key survives delete")
	}
}

func TestBucketRegion(t *testing.T) {
	s, _ := newStore()
	_ = s.CreateBucket("b", "eu-west-2")
	r, err := s.BucketRegion("b")
	if err != nil || r != "eu-west-2" {
		t.Fatalf("region = %v err = %v", r, err)
	}
	if _, err := s.BucketRegion("nope"); err == nil {
		t.Fatal("missing bucket should error")
	}
}
