// Package s3 simulates an S3-like object store: per-region buckets,
// immutable object versions, and transfer accounting that charges
// cross-region and cross-continent data movement — the cost channel the
// paper calls out for multi-region checkpoint workloads.
package s3

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/cost"
	"spotverse/internal/simclock"
)

// Errors returned by the store.
var (
	ErrNoSuchBucket = errors.New("s3: no such bucket")
	ErrNoSuchKey    = errors.New("s3: no such key")
	ErrBucketExists = errors.New("s3: bucket already exists")
)

// Object is a stored value with metadata. Large simulated payloads may be
// stored size-only (see PutSized): Data stays nil and SyntheticSize
// carries the byte count for billing.
type Object struct {
	Key           string
	Data          []byte
	PutAt         time.Time
	Metadata      map[string]string
	SyntheticSize int64
}

// Size returns the object payload size in bytes.
func (o *Object) Size() int64 {
	if o.SyntheticSize > 0 {
		return o.SyntheticSize
	}
	return int64(len(o.Data))
}

type bucket struct {
	region  catalog.Region
	objects map[string]*Object
}

// FaultFunc decides whether one API call fails with an injected fault
// (nil = healthy). Installed via SetFault; see internal/chaos.
type FaultFunc func(op string, region catalog.Region) error

// CorruptFunc decides whether one Get returns bit-flipped data
// (silent storage corruption surfacing on the read path). Installed via
// SetCorrupt; see internal/chaos.
type CorruptFunc func(bucket, key string) bool

// Store is the simulated object store. All operations charge the ledger.
type Store struct {
	eng     *simclock.Engine
	cat     *catalog.Catalog
	ledger  *cost.Ledger
	buckets map[string]*bucket
	fault   FaultFunc
	corrupt CorruptFunc

	bytesTransferredCross int64
	corruptedReads        int64
}

// SetFault installs a fault interceptor consulted at the top of every
// data-plane call (the issuing region is passed where known); nil (the
// default) disables injection.
func (s *Store) SetFault(fn FaultFunc) { s.fault = fn }

// SetCorrupt installs a read-corruption interceptor consulted on every
// successful Get; nil (the default) disables corruption.
func (s *Store) SetCorrupt(fn CorruptFunc) { s.corrupt = fn }

func (s *Store) injected(op string, region catalog.Region) error {
	if s.fault == nil {
		return nil
	}
	return s.fault(op, region)
}

// New returns an empty store charging the given ledger.
func New(eng *simclock.Engine, cat *catalog.Catalog, ledger *cost.Ledger) *Store {
	return &Store{
		eng:     eng,
		cat:     cat,
		ledger:  ledger,
		buckets: make(map[string]*bucket),
	}
}

// CreateBucket creates a bucket homed in a region.
func (s *Store) CreateBucket(name string, region catalog.Region) error {
	if _, ok := s.buckets[name]; ok {
		return fmt.Errorf("create bucket %q: %w", name, ErrBucketExists)
	}
	if _, err := s.cat.RegionInfo(region); err != nil {
		return fmt.Errorf("create bucket %q: %w", name, err)
	}
	s.buckets[name] = &bucket{region: region, objects: make(map[string]*Object)}
	return nil
}

// BucketRegion reports where the bucket lives.
func (s *Store) BucketRegion(name string) (catalog.Region, error) {
	b, ok := s.buckets[name]
	if !ok {
		return "", fmt.Errorf("bucket %q: %w", name, ErrNoSuchBucket)
	}
	return b.region, nil
}

// transferCost charges for moving n bytes between from and the bucket's
// region. Same-region transfer is free.
func (s *Store) transferCost(from catalog.Region, b *bucket, n int64) {
	if from == b.region || from == "" {
		return
	}
	gb := float64(n) / (1 << 30)
	rate := cost.S3CrossRegionUSDPerGB
	if s.cat.CrossContinent(from, b.region) {
		rate = cost.S3CrossContinentUSDPerGB
	}
	s.bytesTransferredCross += n
	s.ledger.MustAdd(cost.CategoryS3Transfer, gb*rate)
}

func (s *Store) storageCost(n int64) {
	// Storage billed as one month-fraction on ingest; good enough for
	// experiment-scale horizons.
	gb := float64(n) / (1 << 30)
	s.ledger.MustAdd(cost.CategoryS3Storage, gb*cost.S3StorageUSDPerGBMonth/30)
}

// Put stores data under bucket/key. from is the region issuing the write
// (the instance's region), used for transfer pricing.
func (s *Store) Put(bucketName, key string, data []byte, from catalog.Region) error {
	if err := s.injected("put", from); err != nil {
		return fmt.Errorf("put %s/%s: %w", bucketName, key, err)
	}
	b, ok := s.buckets[bucketName]
	if !ok {
		return fmt.Errorf("put %s/%s: %w", bucketName, key, ErrNoSuchBucket)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	b.objects[key] = &Object{Key: key, Data: cp, PutAt: s.eng.Now(), Metadata: map[string]string{}}
	s.transferCost(from, b, int64(len(data)))
	s.storageCost(int64(len(data)))
	return nil
}

// PutSized stores a size-only object: billing sees size bytes but no
// payload is materialised. Experiments use it for the paper's 1 GB
// checkpoint uploads, which only matter for cost and transfer accounting.
func (s *Store) PutSized(bucketName, key string, size int64, from catalog.Region) error {
	if size < 0 {
		return fmt.Errorf("put-sized %s/%s: negative size %d", bucketName, key, size)
	}
	if err := s.injected("put-sized", from); err != nil {
		return fmt.Errorf("put-sized %s/%s: %w", bucketName, key, err)
	}
	b, ok := s.buckets[bucketName]
	if !ok {
		return fmt.Errorf("put-sized %s/%s: %w", bucketName, key, ErrNoSuchBucket)
	}
	b.objects[key] = &Object{Key: key, PutAt: s.eng.Now(), Metadata: map[string]string{}, SyntheticSize: size}
	s.transferCost(from, b, size)
	s.storageCost(size)
	return nil
}

// Get fetches bucket/key; from is the reading region for transfer pricing.
func (s *Store) Get(bucketName, key string, from catalog.Region) (*Object, error) {
	if err := s.injected("get", from); err != nil {
		return nil, fmt.Errorf("get %s/%s: %w", bucketName, key, err)
	}
	b, ok := s.buckets[bucketName]
	if !ok {
		return nil, fmt.Errorf("get %s/%s: %w", bucketName, key, ErrNoSuchBucket)
	}
	obj, ok := b.objects[key]
	if !ok {
		return nil, fmt.Errorf("get %s/%s: %w", bucketName, key, ErrNoSuchKey)
	}
	s.transferCost(from, b, obj.Size())
	cp := make([]byte, len(obj.Data))
	copy(cp, obj.Data)
	// Read-path corruption: the stored object is untouched, but this
	// read's copy comes back with one bit flipped mid-payload.
	if s.corrupt != nil && len(cp) > 0 && s.corrupt(bucketName, key) {
		cp[len(cp)/2] ^= 0x01
		s.corruptedReads++
	}
	return &Object{Key: obj.Key, Data: cp, PutAt: obj.PutAt, Metadata: obj.Metadata, SyntheticSize: obj.SyntheticSize}, nil
}

// Exists reports whether bucket/key is present (no transfer charge).
func (s *Store) Exists(bucketName, key string) bool {
	b, ok := s.buckets[bucketName]
	if !ok {
		return false
	}
	_, ok = b.objects[key]
	return ok
}

// Delete removes bucket/key. Deleting a missing key is a no-op (S3
// semantics).
func (s *Store) Delete(bucketName, key string) error {
	if err := s.injected("delete", ""); err != nil {
		return fmt.Errorf("delete %s/%s: %w", bucketName, key, err)
	}
	b, ok := s.buckets[bucketName]
	if !ok {
		return fmt.Errorf("delete %s/%s: %w", bucketName, key, ErrNoSuchBucket)
	}
	delete(b.objects, key)
	return nil
}

// List returns keys in the bucket with the prefix, sorted.
func (s *Store) List(bucketName, prefix string) ([]string, error) {
	if err := s.injected("list", ""); err != nil {
		return nil, fmt.Errorf("list %s: %w", bucketName, err)
	}
	b, ok := s.buckets[bucketName]
	if !ok {
		return nil, fmt.Errorf("list %s: %w", bucketName, ErrNoSuchBucket)
	}
	var keys []string
	for k := range b.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// WipeBucket destroys every object in the bucket — a whole-bucket
// data-loss event. The bucket itself survives, so later writes (or a
// replication repair pass) can repopulate it.
func (s *Store) WipeBucket(name string) error {
	b, ok := s.buckets[name]
	if !ok {
		return fmt.Errorf("wipe %s: %w", name, ErrNoSuchBucket)
	}
	b.objects = make(map[string]*Object)
	return nil
}

// LoseRegion wipes every bucket homed in the region, returning how many
// buckets lost their objects — a regional data-loss event.
func (s *Store) LoseRegion(r catalog.Region) int {
	n := 0
	for _, b := range s.buckets {
		if b.region == r {
			b.objects = make(map[string]*Object)
			n++
		}
	}
	return n
}

// CorruptedReads reports how many Gets returned bit-flipped data.
func (s *Store) CorruptedReads() int64 { return s.corruptedReads }

// CrossRegionBytes reports total bytes moved across regions so far.
func (s *Store) CrossRegionBytes() int64 { return s.bytesTransferredCross }
