package cloudwatch

import (
	"testing"
	"time"

	"spotverse/internal/cost"
	"spotverse/internal/simclock"
)

func newService() (*simclock.Engine, *Service) {
	eng := simclock.NewEngine()
	return eng, New(eng, cost.NewLedger())
}

func TestScheduleFiresPeriodically(t *testing.T) {
	eng, s := newService()
	count := 0
	if err := s.Schedule("sweep", 15*time.Minute, func(time.Time) { count++ }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(simclock.Epoch.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("fired %d times in 1h at 15m, want 4", count)
	}
}

func TestStopAllSilencesRules(t *testing.T) {
	eng, s := newService()
	count := 0
	_ = s.Schedule("sweep", 10*time.Minute, func(time.Time) { count++ })
	_ = eng.Run(simclock.Epoch.Add(30 * time.Minute))
	s.StopAll()
	before := count
	_ = eng.Run(simclock.Epoch.Add(2 * time.Hour))
	if count != before {
		t.Fatalf("rule fired after StopAll: %d -> %d", before, count)
	}
}

func TestScheduleValidation(t *testing.T) {
	_, s := newService()
	if err := s.Schedule("x", time.Minute, nil); err == nil {
		t.Fatal("nil target should be rejected")
	}
	if err := s.Schedule("x", 0, func(time.Time) {}); err == nil {
		t.Fatal("zero interval should be rejected")
	}
}

func TestMetricsRecorded(t *testing.T) {
	eng, s := newService()
	eng.ScheduleAfter(time.Hour, "emit", func() { s.PutMetric("interruptions", 3) })
	eng.ScheduleAfter(2*time.Hour, "emit", func() { s.PutMetric("interruptions", 5) })
	_ = eng.Run(time.Time{})
	pts := s.Metric("interruptions")
	if len(pts) != 2 || pts[0].Value != 3 || pts[1].Value != 5 {
		t.Fatalf("points = %+v", pts)
	}
	if !pts[1].Time.After(pts[0].Time) {
		t.Fatal("timestamps not increasing")
	}
	names := s.MetricNames()
	if len(names) != 1 || names[0] != "interruptions" {
		t.Fatalf("names = %v", names)
	}
}

func TestMetricReturnsCopy(t *testing.T) {
	_, s := newService()
	s.PutMetric("m", 1)
	pts := s.Metric("m")
	pts[0].Value = 999
	if s.Metric("m")[0].Value != 1 {
		t.Fatal("caller mutation leaked into metric store")
	}
}
