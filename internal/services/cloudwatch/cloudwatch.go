// Package cloudwatch simulates the two CloudWatch capabilities SpotVerse
// relies on: scheduled rules that periodically trigger targets (the
// Monitor's metric collectors and the Controller's 15-minute open-request
// sweep), and a simple metric sink for observability.
package cloudwatch

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/cost"
	"spotverse/internal/simclock"
)

// ErrNilTarget is returned when scheduling without a target.
var ErrNilTarget = errors.New("cloudwatch: nil target")

// FaultFunc decides whether one API call fails with an injected fault
// (nil = healthy). Installed via SetFault; see internal/chaos.
type FaultFunc func(op string, region catalog.Region) error

// Datapoint is one metric observation.
type Datapoint struct {
	Time  time.Time
	Value float64
}

// Service is the simulated CloudWatch.
type Service struct {
	eng     *simclock.Engine
	ledger  *cost.Ledger
	metrics map[string][]Datapoint
	tickers []*simclock.Ticker
	fault   FaultFunc

	missedTicks    int64
	droppedMetrics int64
}

// SetFault installs a fault interceptor; a faulted scheduled rule skips
// that tick (the rule keeps firing), a faulted PutMetric loses the
// datapoint. Nil (the default) disables injection.
func (s *Service) SetFault(fn FaultFunc) { s.fault = fn }

// Faults reports ticks skipped and datapoints lost to injection.
func (s *Service) Faults() (missedTicks, droppedMetrics int64) {
	return s.missedTicks, s.droppedMetrics
}

// New returns a service on the engine charging the ledger.
func New(eng *simclock.Engine, ledger *cost.Ledger) *Service {
	return &Service{eng: eng, ledger: ledger, metrics: make(map[string][]Datapoint)}
}

// Schedule registers a periodic rule firing target every interval until
// StopAll (or the simulation ends).
func (s *Service) Schedule(name string, interval time.Duration, target func(now time.Time)) error {
	if target == nil {
		return fmt.Errorf("schedule %q: %w", name, ErrNilTarget)
	}
	if interval <= 0 {
		return fmt.Errorf("schedule %q: non-positive interval %v", name, interval)
	}
	t := s.eng.Every(interval, "cw:"+name, func(now time.Time) {
		if s.fault != nil {
			if err := s.fault("rule:"+name, ""); err != nil {
				s.missedTicks++
				return
			}
		}
		target(now)
	})
	s.tickers = append(s.tickers, t)
	return nil
}

// StopAll stops every scheduled rule; used at experiment teardown so the
// event queue can drain.
func (s *Service) StopAll() {
	for _, t := range s.tickers {
		t.Stop()
	}
	s.tickers = nil
}

// PutMetric records one observation under the metric name.
func (s *Service) PutMetric(name string, value float64) {
	if s.fault != nil {
		if err := s.fault("put-metric:"+name, ""); err != nil {
			s.droppedMetrics++
			return
		}
	}
	s.metrics[name] = append(s.metrics[name], Datapoint{Time: s.eng.Now(), Value: value})
	s.ledger.MustAdd(cost.CategoryCloudWatch, cost.CloudWatchUSDPerMetricPut)
}

// Metric returns the recorded series for the name (copy).
func (s *Service) Metric(name string) []Datapoint {
	src := s.metrics[name]
	out := make([]Datapoint, len(src))
	copy(out, src)
	return out
}

// MetricNames returns all recorded metric names, sorted.
func (s *Service) MetricNames() []string {
	out := make([]string, 0, len(s.metrics))
	for k := range s.metrics {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
