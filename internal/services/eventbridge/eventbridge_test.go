package eventbridge

import (
	"errors"
	"testing"

	"spotverse/internal/cost"
)

func newBus() (*Bus, *cost.Ledger) {
	l := cost.NewLedger()
	return New(l), l
}

func TestRoutingBySourceAndType(t *testing.T) {
	b, _ := newBus()
	var got []string
	_ = b.AddRule("spot", "aws.ec2", "Spot Interruption", func(ev Event) { got = append(got, "spot") })
	_ = b.AddRule("all-ec2", "aws.ec2", "", func(ev Event) { got = append(got, "all-ec2") })
	_ = b.AddRule("s3", "aws.s3", "", func(ev Event) { got = append(got, "s3") })

	n := b.Put(Event{Source: "aws.ec2", DetailType: "Spot Interruption"})
	if n != 2 {
		t.Fatalf("matched = %d, want 2", n)
	}
	if len(got) != 2 || got[0] != "spot" || got[1] != "all-ec2" {
		t.Fatalf("delivery order = %v", got)
	}
}

func TestNoMatch(t *testing.T) {
	b, _ := newBus()
	_ = b.AddRule("r", "aws.ec2", "X", func(Event) {})
	if n := b.Put(Event{Source: "aws.ec2", DetailType: "Y"}); n != 0 {
		t.Fatalf("matched = %d, want 0", n)
	}
}

func TestWildcardRule(t *testing.T) {
	b, _ := newBus()
	count := 0
	_ = b.AddRule("everything", "", "", func(Event) { count++ })
	b.Put(Event{Source: "a", DetailType: "b"})
	b.Put(Event{Source: "c", DetailType: "d"})
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestDetailPayloadPassedThrough(t *testing.T) {
	b, _ := newBus()
	var got any
	_ = b.AddRule("r", "", "", func(ev Event) { got = ev.Detail })
	b.Put(Event{Source: "x", DetailType: "y", Detail: 1234})
	if got != 1234 {
		t.Fatalf("detail = %v", got)
	}
}

func TestNilTargetRejected(t *testing.T) {
	b, _ := newBus()
	if err := b.AddRule("r", "", "", nil); !errors.Is(err, ErrNilTarget) {
		t.Fatalf("err = %v", err)
	}
}

func TestBillingAndStats(t *testing.T) {
	b, l := newBus()
	_ = b.AddRule("r", "", "", func(Event) {})
	for i := 0; i < 3; i++ {
		b.Put(Event{Source: "s", DetailType: "t"})
	}
	pub, matched := b.Stats()
	if pub != 3 || matched != 3 {
		t.Fatalf("stats = %d/%d", pub, matched)
	}
	want := 3 * cost.EventBridgeUSDPerEvent
	if got := l.Of(cost.CategoryEventBridge); got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("billed %v, want %v", got, want)
	}
}
