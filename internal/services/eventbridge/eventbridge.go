// Package eventbridge simulates an EventBridge-style event bus: rules
// match events by source and detail-type and fan out to targets. The
// cloud provider publishes spot interruption notices here; the SpotVerse
// Controller subscribes its interruption-handler Lambda.
package eventbridge

import (
	"errors"
	"fmt"

	"spotverse/internal/cost"
)

// Event is a routed message.
type Event struct {
	// Source identifies the emitter, e.g. "aws.ec2".
	Source string
	// DetailType classifies the event, e.g. "EC2 Spot Instance
	// Interruption Warning".
	DetailType string
	// Detail is the payload.
	Detail any
}

// Target consumes matched events.
type Target func(ev Event)

// ErrNilTarget is returned when registering a rule without a target.
var ErrNilTarget = errors.New("eventbridge: nil target")

type rule struct {
	name       string
	source     string
	detailType string
	target     Target
}

// Bus is the simulated event bus.
type Bus struct {
	ledger *cost.Ledger
	rules  []rule

	published int64
	matched   int64
}

// New returns an empty bus charging the ledger.
func New(ledger *cost.Ledger) *Bus {
	return &Bus{ledger: ledger}
}

// AddRule registers a rule. Empty source or detailType act as wildcards.
func (b *Bus) AddRule(name, source, detailType string, t Target) error {
	if t == nil {
		return fmt.Errorf("rule %q: %w", name, ErrNilTarget)
	}
	b.rules = append(b.rules, rule{name: name, source: source, detailType: detailType, target: t})
	return nil
}

// Put publishes an event, synchronously delivering it to every matching
// rule in registration order. It returns the number of matched rules.
func (b *Bus) Put(ev Event) int {
	b.published++
	b.ledger.MustAdd(cost.CategoryEventBridge, cost.EventBridgeUSDPerEvent)
	n := 0
	for _, r := range b.rules {
		if r.source != "" && r.source != ev.Source {
			continue
		}
		if r.detailType != "" && r.detailType != ev.DetailType {
			continue
		}
		n++
		b.matched++
		r.target(ev)
	}
	return n
}

// Stats reports publish and match counters.
func (b *Bus) Stats() (published, matched int64) { return b.published, b.matched }
