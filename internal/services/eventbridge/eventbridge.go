// Package eventbridge simulates an EventBridge-style event bus: rules
// match events by source and detail-type and fan out to targets. The
// cloud provider publishes spot interruption notices here; the SpotVerse
// Controller subscribes its interruption-handler Lambda.
package eventbridge

import (
	"errors"
	"fmt"

	"spotverse/internal/catalog"
	"spotverse/internal/cost"
)

// FaultFunc decides whether one API call fails with an injected fault
// (nil = healthy). Installed via SetFault; see internal/chaos.
type FaultFunc func(op string, region catalog.Region) error

// DropFunc decides whether one matched rule delivery is silently lost
// (a lost interruption notice). Installed via SetDrop.
type DropFunc func(rule, source, detailType string) bool

// Event is a routed message.
type Event struct {
	// Source identifies the emitter, e.g. "aws.ec2".
	Source string
	// DetailType classifies the event, e.g. "EC2 Spot Instance
	// Interruption Warning".
	DetailType string
	// Detail is the payload.
	Detail any
}

// Target consumes matched events.
type Target func(ev Event)

// ErrNilTarget is returned when registering a rule without a target.
var ErrNilTarget = errors.New("eventbridge: nil target")

type rule struct {
	name       string
	source     string
	detailType string
	target     Target
}

// Bus is the simulated event bus.
type Bus struct {
	ledger *cost.Ledger
	rules  []rule
	fault  FaultFunc
	drop   DropFunc

	published int64
	matched   int64
	dropped   int64
}

// SetFault installs a fault interceptor on Put; while faulted, events
// are accepted (and billed) but delivered to no rule. Nil disables.
func (b *Bus) SetFault(fn FaultFunc) { b.fault = fn }

// SetDrop installs a per-delivery drop interceptor; nil disables.
func (b *Bus) SetDrop(fn DropFunc) { b.drop = fn }

// New returns an empty bus charging the ledger.
func New(ledger *cost.Ledger) *Bus {
	return &Bus{ledger: ledger}
}

// AddRule registers a rule. Empty source or detailType act as wildcards.
func (b *Bus) AddRule(name, source, detailType string, t Target) error {
	if t == nil {
		return fmt.Errorf("rule %q: %w", name, ErrNilTarget)
	}
	b.rules = append(b.rules, rule{name: name, source: source, detailType: detailType, target: t})
	return nil
}

// Put publishes an event, synchronously delivering it to every matching
// rule in registration order. It returns the number of matched rules.
func (b *Bus) Put(ev Event) int {
	b.published++
	b.ledger.MustAdd(cost.CategoryEventBridge, cost.EventBridgeUSDPerEvent)
	if b.fault != nil {
		if err := b.fault("put", ""); err != nil {
			// The bus is browned out: the event is accepted but never
			// reaches any rule. Callers see zero matches.
			b.dropped++
			return 0
		}
	}
	n := 0
	for _, r := range b.rules {
		if r.source != "" && r.source != ev.Source {
			continue
		}
		if r.detailType != "" && r.detailType != ev.DetailType {
			continue
		}
		if b.drop != nil && b.drop(r.name, ev.Source, ev.DetailType) {
			b.dropped++
			continue
		}
		n++
		b.matched++
		r.target(ev)
	}
	return n
}

// Stats reports publish and match counters.
func (b *Bus) Stats() (published, matched int64) { return b.published, b.matched }

// Dropped reports deliveries lost to injected faults and drops.
func (b *Bus) Dropped() int64 { return b.dropped }
