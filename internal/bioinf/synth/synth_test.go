package synth

import (
	"strings"
	"testing"

	"spotverse/internal/simclock"
)

func rng() *simclock.RNG { return simclock.Stream(7, "synth-test") }

func TestGenomeLengthAndAlphabet(t *testing.T) {
	g, err := Genome(rng(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 1000 {
		t.Fatalf("len = %d", len(g))
	}
	for i := 0; i < len(g); i++ {
		if !strings.ContainsRune("ACGT", rune(g[i])) {
			t.Fatalf("bad base %q", g[i])
		}
	}
}

func TestGenomeBadLength(t *testing.T) {
	if _, err := Genome(rng(), 0); err == nil {
		t.Fatal("want error")
	}
}

func TestGenomeBalancedComposition(t *testing.T) {
	g, _ := Genome(rng(), 20000)
	counts := map[byte]int{}
	for i := 0; i < len(g); i++ {
		counts[g[i]]++
	}
	for _, b := range []byte("ACGT") {
		frac := float64(counts[b]) / float64(len(g))
		if frac < 0.2 || frac > 0.3 {
			t.Fatalf("base %q fraction %v outside [0.2, 0.3]", b, frac)
		}
	}
}

func TestMutateRates(t *testing.T) {
	r := rng()
	ref, _ := Genome(r, 10000)
	f, err := Mutate(r, ref, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := len(f.Variants)
	if n < 50 || n > 200 {
		t.Fatalf("substitutions = %d, want ~100", n)
	}
	for _, v := range f.Variants {
		if v.Ref == v.Alt {
			t.Fatal("no-op substitution generated")
		}
		if ref[v.Pos-1] != v.Ref[0] {
			t.Fatalf("REF %q does not match reference at pos %d", v.Ref, v.Pos)
		}
	}
}

func TestMutateZeroRates(t *testing.T) {
	r := rng()
	ref, _ := Genome(r, 500)
	f, err := Mutate(r, ref, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Variants) != 0 {
		t.Fatalf("variants = %d, want 0", len(f.Variants))
	}
}

func TestMutateBadRate(t *testing.T) {
	if _, err := Mutate(rng(), "ACGT", 1.5, 0); err == nil {
		t.Fatal("want error")
	}
}

func TestMutateVariantsSortedNonOverlapping(t *testing.T) {
	r := rng()
	ref, _ := Genome(r, 5000)
	f, err := Mutate(r, ref, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	prevEnd := 0
	for _, v := range f.Variants {
		if v.Pos <= prevEnd {
			t.Fatalf("variant at pos %d overlaps previous ending %d", v.Pos, prevEnd)
		}
		prevEnd = v.Pos + len(v.Ref) - 1
	}
}

func TestReads(t *testing.T) {
	r := rng()
	tmpl, _ := Genome(r, 2000)
	reads, err := Reads(r, tmpl, ReadsOptions{Count: 100, Length: 150, ErrorRate: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 100 {
		t.Fatalf("reads = %d", len(reads))
	}
	for _, rd := range reads {
		if len(rd.Seq) != 150 || len(rd.Qual) != 150 {
			t.Fatalf("read %s lengths: seq %d qual %d", rd.ID, len(rd.Seq), len(rd.Qual))
		}
	}
}

func TestReadsWithBarcode(t *testing.T) {
	r := rng()
	tmpl, _ := Genome(r, 500)
	reads, err := Reads(r, tmpl, ReadsOptions{Count: 10, Length: 50, Barcode: "AACCGGTT"})
	if err != nil {
		t.Fatal(err)
	}
	for _, rd := range reads {
		if !strings.HasPrefix(rd.Seq, "AACCGGTT") {
			t.Fatalf("barcode missing: %q", rd.Seq[:12])
		}
		if len(rd.Seq) != len(rd.Qual) {
			t.Fatal("length mismatch with barcode")
		}
	}
}

func TestReadsErrorRateRealized(t *testing.T) {
	r := rng()
	tmpl, _ := Genome(r, 400)
	clean, err := Reads(r, tmpl, ReadsOptions{Count: 200, Length: 100, ErrorRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, rd := range clean {
		if !strings.Contains(tmpl, rd.Seq) {
			t.Fatal("error-free read not a substring of template")
		}
		if rd.MeanQuality() < 25 {
			t.Fatalf("clean read quality %v too low", rd.MeanQuality())
		}
	}
	noisy, err := Reads(r, tmpl, ReadsOptions{Count: 200, Length: 100, ErrorRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	mismatched := 0
	for _, rd := range noisy {
		if !strings.Contains(tmpl, rd.Seq) {
			mismatched++
		}
	}
	if mismatched < 150 {
		t.Fatalf("only %d/200 noisy reads carry errors", mismatched)
	}
}

func TestReadsValidation(t *testing.T) {
	r := rng()
	tmpl, _ := Genome(r, 100)
	if _, err := Reads(r, tmpl, ReadsOptions{Count: 0, Length: 50}); err == nil {
		t.Fatal("count 0 should error")
	}
	if _, err := Reads(r, tmpl, ReadsOptions{Count: 1, Length: 200}); err == nil {
		t.Fatal("length > template should error")
	}
	if _, err := Reads(r, tmpl, ReadsOptions{Count: 1, Length: 50, ErrorRate: 2}); err == nil {
		t.Fatal("bad error rate should error")
	}
}

func TestCommunityProfile(t *testing.T) {
	prof, err := CommunityProfile(rng(), 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 5 || len(prof[0]) != 30 {
		t.Fatalf("shape = %dx%d", len(prof), len(prof[0]))
	}
	for _, row := range prof {
		for _, v := range row {
			if v <= 0 {
				t.Fatal("non-positive abundance")
			}
		}
	}
	if _, err := CommunityProfile(rng(), 0, 5); err == nil {
		t.Fatal("want error")
	}
}
