// Package synth generates synthetic bioinformatics data — random genomes,
// mutated isolates with their VCFs, and error-bearing sequencing reads —
// standing in for the paper's SRA downloads and SARS-CoV-2 variant
// datasets, which are not available offline.
package synth

import (
	"errors"
	"fmt"

	"spotverse/internal/bioinf/fastq"
	"spotverse/internal/bioinf/vcf"
	"spotverse/internal/simclock"
)

// Errors returned by the generators.
var (
	ErrBadLength = errors.New("synth: length must be positive")
	ErrBadCount  = errors.New("synth: count must be positive")
	ErrBadRate   = errors.New("synth: rate must be in [0, 1]")
)

const bases = "ACGT"

// Genome generates a random genome of the given length.
func Genome(rng *simclock.RNG, length int) (string, error) {
	if length <= 0 {
		return "", ErrBadLength
	}
	out := make([]byte, length)
	for i := range out {
		out[i] = bases[rng.Intn(4)]
	}
	return string(out), nil
}

// Mutate produces an isolate of the reference plus the VCF describing its
// differences. subRate is the per-base substitution probability; indelRate
// the per-base probability of starting a short (1-3bp) insertion or
// deletion.
func Mutate(rng *simclock.RNG, reference string, subRate, indelRate float64) (*vcf.File, error) {
	if subRate < 0 || subRate > 1 || indelRate < 0 || indelRate > 1 {
		return nil, ErrBadRate
	}
	f := &vcf.File{Meta: []string{
		"##fileformat=VCFv4.2",
		"##source=spotverse-synth",
	}}
	i := 0
	for i < len(reference) {
		switch {
		case rng.Bool(subRate):
			ref := reference[i]
			alt := ref
			for alt == ref {
				alt = bases[rng.Intn(4)]
			}
			f.Variants = append(f.Variants, vcf.Variant{
				Chrom:  "chr1",
				Pos:    i + 1,
				ID:     fmt.Sprintf("sub%d", i+1),
				Ref:    string(ref),
				Alt:    string(alt),
				Qual:   rng.Uniform(30, 90),
				Filter: "PASS",
			})
			i++
		case rng.Bool(indelRate):
			n := 1 + rng.Intn(3)
			if rng.Bool(0.5) && i+n < len(reference) {
				// Deletion of n bases after the anchor base.
				f.Variants = append(f.Variants, vcf.Variant{
					Chrom:  "chr1",
					Pos:    i + 1,
					ID:     fmt.Sprintf("del%d", i+1),
					Ref:    reference[i : i+n+1],
					Alt:    reference[i : i+1],
					Qual:   rng.Uniform(30, 90),
					Filter: "PASS",
				})
				i += n + 1
			} else {
				// Insertion of n bases after the anchor base.
				ins := make([]byte, n)
				for j := range ins {
					ins[j] = bases[rng.Intn(4)]
				}
				f.Variants = append(f.Variants, vcf.Variant{
					Chrom:  "chr1",
					Pos:    i + 1,
					ID:     fmt.Sprintf("ins%d", i+1),
					Ref:    reference[i : i+1],
					Alt:    reference[i:i+1] + string(ins),
					Qual:   rng.Uniform(30, 90),
					Filter: "PASS",
				})
				i++
			}
		default:
			i++
		}
	}
	return f, nil
}

// ReadsOptions tunes read generation.
type ReadsOptions struct {
	// Count is the number of reads.
	Count int
	// Length is the read length.
	Length int
	// ErrorRate is the per-base sequencing error probability.
	ErrorRate float64
	// Barcode, when non-empty, is prepended to every read (for demux
	// workloads).
	Barcode string
	// IDPrefix prefixes read identifiers; defaults to "read".
	IDPrefix string
}

// Reads samples error-bearing reads uniformly from the template sequence.
// Base quality correlates with whether the base was corrupted, like real
// basecallers: wrong bases tend to carry lower Phred scores.
func Reads(rng *simclock.RNG, template string, opts ReadsOptions) ([]fastq.Read, error) {
	if opts.Count <= 0 {
		return nil, ErrBadCount
	}
	if opts.Length <= 0 || opts.Length > len(template) {
		return nil, fmt.Errorf("%w: read length %d vs template %d", ErrBadLength, opts.Length, len(template))
	}
	if opts.ErrorRate < 0 || opts.ErrorRate > 1 {
		return nil, ErrBadRate
	}
	prefix := opts.IDPrefix
	if prefix == "" {
		prefix = "read"
	}
	out := make([]fastq.Read, 0, opts.Count)
	for i := 0; i < opts.Count; i++ {
		start := rng.Intn(len(template) - opts.Length + 1)
		s := []byte(template[start : start+opts.Length])
		q := make([]byte, len(s))
		for j := range s {
			if rng.Bool(opts.ErrorRate) {
				orig := s[j]
				for s[j] == orig {
					s[j] = bases[rng.Intn(4)]
				}
				q[j] = byte(fastq.PhredOffset + 2 + rng.Intn(14)) // Q2-Q15
			} else {
				q[j] = byte(fastq.PhredOffset + 28 + rng.Intn(12)) // Q28-Q39
			}
		}
		read := fastq.Read{
			ID:   fmt.Sprintf("%s-%06d", prefix, i),
			Seq:  opts.Barcode + string(s),
			Qual: qualFor(opts.Barcode, rng) + string(q),
		}
		out = append(out, read)
	}
	return out, nil
}

func qualFor(barcode string, rng *simclock.RNG) string {
	q := make([]byte, len(barcode))
	for i := range q {
		q[i] = byte(fastq.PhredOffset + 30 + rng.Intn(8))
	}
	return string(q)
}

// CommunityProfile generates per-sample species abundance vectors for
// diversity analyses: n samples over s species with log-normal abundances.
func CommunityProfile(rng *simclock.RNG, samples, species int) ([][]float64, error) {
	if samples <= 0 || species <= 0 {
		return nil, ErrBadCount
	}
	out := make([][]float64, samples)
	for i := range out {
		row := make([]float64, species)
		for j := range row {
			row[j] = rng.LogNormalAround(10, 1.2)
		}
		out[i] = row
	}
	return out, nil
}
