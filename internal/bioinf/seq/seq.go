// Package seq provides core sequence operations shared by the workflow
// tools: k-mer profiles and distances, adapter trimming (Cutadapt's job),
// quality trimming, reverse complement, and barcode demultiplexing
// (QIIME 2's demux step).
package seq

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"spotverse/internal/bioinf/fastq"
)

// Errors returned by the package.
var (
	ErrBadK          = errors.New("seq: k must be positive")
	ErrEmptyAdapter  = errors.New("seq: empty adapter")
	ErrEmptyBarcodes = errors.New("seq: no barcodes supplied")
)

// ReverseComplement returns the reverse complement of a DNA sequence;
// unknown symbols map to 'N'.
func ReverseComplement(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		var c byte
		switch s[len(s)-1-i] {
		case 'A', 'a':
			c = 'T'
		case 'C', 'c':
			c = 'G'
		case 'G', 'g':
			c = 'C'
		case 'T', 't', 'U', 'u':
			c = 'A'
		default:
			c = 'N'
		}
		out[i] = c
	}
	return string(out)
}

// GCContent returns the fraction of G/C symbols, 0 for empty input.
func GCContent(s string) float64 {
	if len(s) == 0 {
		return 0
	}
	gc := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case 'G', 'g', 'C', 'c':
			gc++
		}
	}
	return float64(gc) / float64(len(s))
}

// KmerProfile counts canonical k-mers (k-mers containing non-ACGT symbols
// are skipped). The map keys are uppercase k-mers.
func KmerProfile(s string, k int) (map[string]int, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	out := make(map[string]int)
	up := strings.ToUpper(s)
	for i := 0; i+k <= len(up); i++ {
		kmer := up[i : i+k]
		if strings.ContainsAny(kmer, "NRYSWKMBDHV-U*") {
			continue
		}
		out[kmer]++
	}
	return out, nil
}

// CosineDistance returns 1 - cosine similarity between two k-mer
// profiles. Two empty profiles are at distance 0; one empty profile is at
// distance 1.
func CosineDistance(a, b map[string]int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	var dot, na, nb float64
	for k, va := range a {
		na += float64(va) * float64(va)
		if vb, ok := b[k]; ok {
			dot += float64(va) * float64(vb)
		}
	}
	for _, vb := range b {
		nb += float64(vb) * float64(vb)
	}
	return 1 - dot/(math.Sqrt(na)*math.Sqrt(nb))
}

// Hamming returns the number of mismatching positions between equal-length
// strings, or an error if the lengths differ.
func Hamming(a, b string) (int, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("seq: hamming on lengths %d and %d", len(a), len(b))
	}
	d := 0
	for i := 0; i < len(a); i++ {
		if a[i] != b[i] {
			d++
		}
	}
	return d, nil
}

// TrimAdapter removes the adapter and everything after it from the read's
// 3' end, allowing maxMismatch mismatches in the adapter match (Cutadapt
// semantics, simplified). Partial adapter hits at the read end of at
// least minOverlap bases are also trimmed.
func TrimAdapter(r fastq.Read, adapter string, maxMismatch, minOverlap int) (fastq.Read, error) {
	if adapter == "" {
		return fastq.Read{}, ErrEmptyAdapter
	}
	if minOverlap <= 0 {
		minOverlap = 3
	}
	seq := r.Seq
	// Full-adapter scan.
	for i := 0; i+len(adapter) <= len(seq); i++ {
		d, err := Hamming(seq[i:i+len(adapter)], adapter)
		if err != nil {
			return fastq.Read{}, err
		}
		if d <= maxMismatch {
			return cut(r, i), nil
		}
	}
	// Partial adapter at the 3' end.
	for over := len(adapter) - 1; over >= minOverlap; over-- {
		start := len(seq) - over
		if start < 0 {
			continue
		}
		d, err := Hamming(seq[start:], adapter[:over])
		if err != nil {
			return fastq.Read{}, err
		}
		budget := maxMismatch * over / len(adapter)
		if d <= budget {
			return cut(r, start), nil
		}
	}
	return r, nil
}

func cut(r fastq.Read, at int) fastq.Read {
	return fastq.Read{ID: r.ID, Seq: r.Seq[:at], Qual: r.Qual[:at]}
}

// QualityTrim trims the read's 3' end using the Phred-threshold running-sum
// algorithm (BWA/Cutadapt style): scanning from the 3' end, it cuts at the
// position maximising the partial sum of (threshold - quality); reads whose
// suffixes are all above threshold are left untouched.
func QualityTrim(r fastq.Read, threshold int) fastq.Read {
	scores := r.QualityScores()
	bestIdx := len(scores)
	sum, maxSum := 0, 0
	for i := len(scores) - 1; i >= 0; i-- {
		sum += threshold - scores[i]
		if sum > maxSum {
			maxSum = sum
			bestIdx = i
		}
	}
	return cut(r, bestIdx)
}

// DemuxResult maps sample names to their assigned reads; unassigned reads
// land under the empty key.
type DemuxResult struct {
	BySample   map[string][]fastq.Read
	Unassigned []fastq.Read
}

// Demultiplex assigns reads to samples by matching the read prefix
// against the barcode map (sample -> barcode) with at most maxMismatch
// mismatches, stripping the barcode from assigned reads. Ambiguous reads
// (two barcodes within budget) are unassigned.
func Demultiplex(reads []fastq.Read, barcodes map[string]string, maxMismatch int) (*DemuxResult, error) {
	if len(barcodes) == 0 {
		return nil, ErrEmptyBarcodes
	}
	res := &DemuxResult{BySample: make(map[string][]fastq.Read, len(barcodes))}
	for sample := range barcodes {
		res.BySample[sample] = nil
	}
	for _, r := range reads {
		best, bestSample := math.MaxInt, ""
		ambiguous := false
		for sample, bc := range barcodes {
			if len(r.Seq) < len(bc) {
				continue
			}
			d, err := Hamming(r.Seq[:len(bc)], bc)
			if err != nil {
				return nil, err
			}
			switch {
			case d < best:
				best, bestSample, ambiguous = d, sample, false
			case d == best:
				ambiguous = true
			}
		}
		if bestSample == "" || best > maxMismatch || ambiguous {
			res.Unassigned = append(res.Unassigned, r)
			continue
		}
		bc := barcodes[bestSample]
		res.BySample[bestSample] = append(res.BySample[bestSample], cutPrefix(r, len(bc)))
	}
	return res, nil
}

func cutPrefix(r fastq.Read, n int) fastq.Read {
	return fastq.Read{ID: r.ID, Seq: r.Seq[n:], Qual: r.Qual[n:]}
}
