package seq

import (
	"testing"
	"testing/quick"

	"spotverse/internal/bioinf/fastq"
	"spotverse/internal/simclock"
)

func TestReverseComplement(t *testing.T) {
	cases := map[string]string{
		"ACGT":  "ACGT",
		"AAAA":  "TTTT",
		"GATTA": "TAATC",
		"acgu":  "ACGT",
		"ANA":   "TNT",
		"":      "",
	}
	for in, want := range cases {
		if got := ReverseComplement(in); got != want {
			t.Errorf("ReverseComplement(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	g := simclock.NewRNG(5)
	bases := "ACGT"
	f := func(n uint8) bool {
		s := make([]byte, n%50+1)
		for i := range s {
			s[i] = bases[g.Intn(4)]
		}
		return ReverseComplement(ReverseComplement(string(s))) == string(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGCContent(t *testing.T) {
	if got := GCContent("GGCC"); got != 1 {
		t.Fatalf("GC = %v, want 1", got)
	}
	if got := GCContent("AATT"); got != 0 {
		t.Fatalf("GC = %v, want 0", got)
	}
	if got := GCContent("ACGT"); got != 0.5 {
		t.Fatalf("GC = %v, want 0.5", got)
	}
	if got := GCContent(""); got != 0 {
		t.Fatalf("GC empty = %v", got)
	}
}

func TestKmerProfile(t *testing.T) {
	p, err := KmerProfile("ACGTACG", 3)
	if err != nil {
		t.Fatal(err)
	}
	if p["ACG"] != 2 || p["CGT"] != 1 || p["GTA"] != 1 || p["TAC"] != 1 {
		t.Fatalf("profile = %v", p)
	}
}

func TestKmerProfileSkipsAmbiguous(t *testing.T) {
	p, err := KmerProfile("ACNGT", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p["CN"]; ok {
		t.Fatal("ambiguous k-mer counted")
	}
	if p["AC"] != 1 || p["GT"] != 1 {
		t.Fatalf("profile = %v", p)
	}
}

func TestKmerProfileBadK(t *testing.T) {
	if _, err := KmerProfile("ACGT", 0); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestCosineDistance(t *testing.T) {
	a, _ := KmerProfile("ACGTACGTACGT", 4)
	if d := CosineDistance(a, a); d > 1e-12 {
		t.Fatalf("self distance = %v, want 0", d)
	}
	b, _ := KmerProfile("GGGGGGGGGG", 4)
	if d := CosineDistance(a, b); d < 0.9 {
		t.Fatalf("disjoint distance = %v, want ~1", d)
	}
	if d := CosineDistance(nil, nil); d != 0 {
		t.Fatalf("empty-empty = %v", d)
	}
	if d := CosineDistance(a, nil); d != 1 {
		t.Fatalf("one-empty = %v", d)
	}
}

func TestCosineDistanceSymmetricAndBounded(t *testing.T) {
	g := simclock.NewRNG(7)
	bases := "ACGT"
	mk := func() map[string]int {
		s := make([]byte, 40)
		for i := range s {
			s[i] = bases[g.Intn(4)]
		}
		p, _ := KmerProfile(string(s), 3)
		return p
	}
	for i := 0; i < 50; i++ {
		a, b := mk(), mk()
		d1, d2 := CosineDistance(a, b), CosineDistance(b, a)
		if d1 != d2 {
			t.Fatalf("asymmetric: %v vs %v", d1, d2)
		}
		if d1 < -1e-12 || d1 > 1+1e-12 {
			t.Fatalf("out of bounds: %v", d1)
		}
	}
}

func TestHamming(t *testing.T) {
	d, err := Hamming("ACGT", "AGGT")
	if err != nil || d != 1 {
		t.Fatalf("d=%d err=%v", d, err)
	}
	if _, err := Hamming("AC", "ACG"); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func read(s string) fastq.Read {
	q := make([]byte, len(s))
	for i := range q {
		q[i] = 'I'
	}
	return fastq.Read{ID: "r", Seq: s, Qual: string(q)}
}

func TestTrimAdapterFullMatch(t *testing.T) {
	r, err := TrimAdapter(read("ACGTACGTAGATCGGAAGAGTT"), "AGATCGGAAGAG", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq != "ACGTACGT" {
		t.Fatalf("trimmed = %q", r.Seq)
	}
	if len(r.Seq) != len(r.Qual) {
		t.Fatal("qual not trimmed with seq")
	}
}

func TestTrimAdapterWithMismatch(t *testing.T) {
	// One mismatch inside the adapter ("AGATCGGAAGAG" -> "AGATCGGTAGAG").
	r, err := TrimAdapter(read("CCCCAGATCGGTAGAGTTT"), "AGATCGGAAGAG", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq != "CCCC" {
		t.Fatalf("trimmed = %q", r.Seq)
	}
}

func TestTrimAdapterPartialAtEnd(t *testing.T) {
	r, err := TrimAdapter(read("ACGTACGTAGATC"), "AGATCGGAAGAG", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq != "ACGTACGT" {
		t.Fatalf("trimmed = %q", r.Seq)
	}
}

func TestTrimAdapterNoMatchUnchanged(t *testing.T) {
	in := read("ACGTACGTACGT")
	r, err := TrimAdapter(in, "GGGGGGGG", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq != in.Seq {
		t.Fatalf("unexpected trim: %q", r.Seq)
	}
}

func TestTrimAdapterEmptyAdapter(t *testing.T) {
	if _, err := TrimAdapter(read("ACGT"), "", 0, 3); err == nil {
		t.Fatal("empty adapter should error")
	}
}

func TestQualityTrim(t *testing.T) {
	// Last 4 bases are Q2 ('#'), rest are Q40 ('I').
	r := fastq.Read{ID: "x", Seq: "ACGTACGT", Qual: "IIII####"}
	out := QualityTrim(r, 20)
	if out.Seq != "ACGT" {
		t.Fatalf("trimmed = %q", out.Seq)
	}
}

func TestQualityTrimKeepsGoodRead(t *testing.T) {
	r := read("ACGTACGT") // all Q40
	out := QualityTrim(r, 20)
	if out.Seq != r.Seq {
		t.Fatalf("good read trimmed to %q", out.Seq)
	}
}

func TestQualityTrimNeverLengthens(t *testing.T) {
	g := simclock.NewRNG(11)
	for i := 0; i < 100; i++ {
		n := g.Intn(40) + 1
		s := make([]byte, n)
		q := make([]byte, n)
		for j := range s {
			s[j] = "ACGT"[g.Intn(4)]
			q[j] = byte(fastq.PhredOffset + g.Intn(41))
		}
		r := fastq.Read{ID: "p", Seq: string(s), Qual: string(q)}
		out := QualityTrim(r, 20)
		if len(out.Seq) > n || len(out.Seq) != len(out.Qual) {
			t.Fatalf("bad trim: %d -> %d", n, len(out.Seq))
		}
	}
}

func TestDemultiplex(t *testing.T) {
	barcodes := map[string]string{"s1": "AAAA", "s2": "CCCC"}
	reads := []fastq.Read{
		read("AAAAGGGG"), // s1
		read("CCCCGGGG"), // s2
		read("AAAT GGG"), // 1 mismatch vs s1... contains space; replace
	}
	reads[2] = read("AAATGGGG") // 1 mismatch vs s1
	res, err := Demultiplex(reads, barcodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BySample["s1"]) != 2 || len(res.BySample["s2"]) != 1 {
		t.Fatalf("assignment = s1:%d s2:%d", len(res.BySample["s1"]), len(res.BySample["s2"]))
	}
	if res.BySample["s1"][0].Seq != "GGGG" {
		t.Fatalf("barcode not stripped: %q", res.BySample["s1"][0].Seq)
	}
}

func TestDemultiplexUnassigned(t *testing.T) {
	barcodes := map[string]string{"s1": "AAAA"}
	res, err := Demultiplex([]fastq.Read{read("GGGGTTTT")}, barcodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unassigned) != 1 || len(res.BySample["s1"]) != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestDemultiplexAmbiguous(t *testing.T) {
	barcodes := map[string]string{"s1": "AAAA", "s2": "AAAT"}
	// Read prefix AAAC is distance 1 from both.
	res, err := Demultiplex([]fastq.Read{read("AAACGGGG")}, barcodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unassigned) != 1 {
		t.Fatalf("ambiguous read assigned: %+v", res)
	}
}

func TestDemultiplexNoBarcodes(t *testing.T) {
	if _, err := Demultiplex(nil, nil, 0); err == nil {
		t.Fatal("no barcodes should error")
	}
}

func TestDemultiplexShortRead(t *testing.T) {
	barcodes := map[string]string{"s1": "AAAAAAAA"}
	res, err := Demultiplex([]fastq.Read{read("AAA")}, barcodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unassigned) != 1 {
		t.Fatal("read shorter than barcode must be unassigned")
	}
}
