package align

import (
	"errors"
	"strings"
	"testing"

	"spotverse/internal/bioinf/synth"
	"spotverse/internal/bioinf/variant"
	"spotverse/internal/simclock"
)

func TestIdenticalSequences(t *testing.T) {
	res, err := Global("ACGTACGT", "ACGTACGT", Scoring{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Identity() != 1 || res.Mismatches != 0 || res.Gaps != 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.Score != 16 { // 8 matches x +2
		t.Fatalf("score = %d", res.Score)
	}
}

func TestSingleMismatch(t *testing.T) {
	res, err := Global("ACGT", "AGGT", Scoring{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 3 || res.Mismatches != 1 || res.Gaps != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestInsertionMakesGap(t *testing.T) {
	res, err := Global("ACGT", "ACTTGT", Scoring{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gaps != 2 {
		t.Fatalf("gaps = %d (%s / %s)", res.Gaps, res.AlignedA, res.AlignedB)
	}
	if len(res.AlignedA) != len(res.AlignedB) {
		t.Fatal("aligned lengths differ")
	}
	if strings.ReplaceAll(res.AlignedA, "-", "") != "ACGT" {
		t.Fatalf("alignedA lost symbols: %q", res.AlignedA)
	}
	if strings.ReplaceAll(res.AlignedB, "-", "") != "ACTTGT" {
		t.Fatalf("alignedB lost symbols: %q", res.AlignedB)
	}
}

func TestEmptyRejected(t *testing.T) {
	if _, err := Global("", "ACGT", Scoring{}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Identity("ACGT", ""); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestSymmetricScore(t *testing.T) {
	a, b := "ACGTTACG", "ACGTACGGA"
	r1, err := Global(a, b, Scoring{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Global(b, a, Scoring{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Score != r2.Score {
		t.Fatalf("asymmetric scores: %d vs %d", r1.Score, r2.Score)
	}
}

// TestIndelAwareIdentity is the motivating case: after an indel, aligned
// identity stays high while positional identity collapses.
func TestIndelAwareIdentity(t *testing.T) {
	rng := simclock.Stream(71, "align-test")
	ref, err := synth.Genome(rng, 1500)
	if err != nil {
		t.Fatal(err)
	}
	f, err := synth.Mutate(rng, ref, 0.002, 0.004)
	if err != nil {
		t.Fatal(err)
	}
	cons, _, err := variant.Consensus(ref, f, variant.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cons) == len(ref) {
		t.Skip("no indels landed for this seed")
	}
	positional := variant.Identity(cons, ref)
	aligned, err := Identity(cons, ref)
	if err != nil {
		t.Fatal(err)
	}
	if aligned < 0.95 {
		t.Fatalf("aligned identity %v too low for light mutation", aligned)
	}
	if aligned <= positional {
		t.Fatalf("aligned identity %v not above positional %v despite indels", aligned, positional)
	}
}

func TestCustomScoring(t *testing.T) {
	// With free gaps, aligning disjoint sequences should prefer gaps.
	res, err := Global("AAAA", "TTTT", Scoring{Match: 1, Mismatch: -10, Gap: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 {
		t.Fatalf("mismatches = %d with free gaps", res.Mismatches)
	}
}
