// Package align implements global pairwise sequence alignment
// (Needleman-Wunsch with linear gap penalties). The genome-reconstruction
// pipeline uses it to score consensus quality against references in a
// way positional identity cannot once indels shift coordinates.
package align

import (
	"errors"
	"strings"
)

// Errors returned by the aligner.
var ErrEmpty = errors.New("align: empty sequence")

// Scoring parameterises the aligner.
type Scoring struct {
	// Match is the score for identical symbols (default +2).
	Match int
	// Mismatch is the score for differing symbols (default -1).
	Mismatch int
	// Gap is the per-symbol gap penalty (default -2).
	Gap int
}

func (s Scoring) normalized() Scoring {
	if s.Match == 0 && s.Mismatch == 0 && s.Gap == 0 {
		return Scoring{Match: 2, Mismatch: -1, Gap: -2}
	}
	return s
}

// Result is one computed alignment.
type Result struct {
	// Score is the optimal global alignment score.
	Score int
	// AlignedA and AlignedB are the gapped sequences ('-' for gaps),
	// equal length.
	AlignedA string
	AlignedB string
	// Matches, Mismatches and Gaps partition the alignment columns.
	Matches    int
	Mismatches int
	Gaps       int
}

// Identity is the fraction of alignment columns that match.
func (r Result) Identity() float64 {
	total := r.Matches + r.Mismatches + r.Gaps
	if total == 0 {
		return 0
	}
	return float64(r.Matches) / float64(total)
}

// Global aligns a against b with Needleman-Wunsch.
func Global(a, b string, sc Scoring) (Result, error) {
	if a == "" || b == "" {
		return Result{}, ErrEmpty
	}
	sc = sc.normalized()
	n, m := len(a), len(b)
	// Score matrix in a flat slice: (n+1) x (m+1).
	w := m + 1
	score := make([]int, (n+1)*w)
	for j := 1; j <= m; j++ {
		score[j] = j * sc.Gap
	}
	for i := 1; i <= n; i++ {
		score[i*w] = i * sc.Gap
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			sub := sc.Mismatch
			if a[i-1] == b[j-1] {
				sub = sc.Match
			}
			best := score[(i-1)*w+j-1] + sub
			if up := score[(i-1)*w+j] + sc.Gap; up > best {
				best = up
			}
			if left := score[i*w+j-1] + sc.Gap; left > best {
				best = left
			}
			score[i*w+j] = best
		}
	}
	// Traceback.
	var sa, sb strings.Builder
	i, j := n, m
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && score[i*w+j] == score[(i-1)*w+j-1]+subScore(a[i-1], b[j-1], sc):
			sa.WriteByte(a[i-1])
			sb.WriteByte(b[j-1])
			i--
			j--
		case i > 0 && score[i*w+j] == score[(i-1)*w+j]+sc.Gap:
			sa.WriteByte(a[i-1])
			sb.WriteByte('-')
			i--
		default:
			sa.WriteByte('-')
			sb.WriteByte(b[j-1])
			j--
		}
	}
	res := Result{
		Score:    score[n*w+m],
		AlignedA: reverse(sa.String()),
		AlignedB: reverse(sb.String()),
	}
	for k := 0; k < len(res.AlignedA); k++ {
		ca, cb := res.AlignedA[k], res.AlignedB[k]
		switch {
		case ca == '-' || cb == '-':
			res.Gaps++
		case ca == cb:
			res.Matches++
		default:
			res.Mismatches++
		}
	}
	return res, nil
}

func subScore(x, y byte, sc Scoring) int {
	if x == y {
		return sc.Match
	}
	return sc.Mismatch
}

func reverse(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

// Identity is the convenience path: align with default scoring and
// return the column identity.
func Identity(a, b string) (float64, error) {
	res, err := Global(a, b, Scoring{})
	if err != nil {
		return 0, err
	}
	return res.Identity(), nil
}
