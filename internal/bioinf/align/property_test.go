package align

import (
	"strings"
	"testing"
	"testing/quick"

	"spotverse/internal/simclock"
)

func randSeq(g *simclock.RNG, n int) string {
	const bases = "ACGT"
	b := make([]byte, n)
	for i := range b {
		b[i] = bases[g.Intn(4)]
	}
	return string(b)
}

// Property: alignments never lose or invent symbols, aligned lengths
// match, identity stays in [0,1], and aligning a sequence to itself
// scores perfect identity.
func TestAlignmentProperties(t *testing.T) {
	g := simclock.NewRNG(99)
	f := func(na, nb uint8) bool {
		a := randSeq(g, int(na%60)+1)
		b := randSeq(g, int(nb%60)+1)
		res, err := Global(a, b, Scoring{})
		if err != nil {
			return false
		}
		if len(res.AlignedA) != len(res.AlignedB) {
			return false
		}
		if strings.ReplaceAll(res.AlignedA, "-", "") != a {
			return false
		}
		if strings.ReplaceAll(res.AlignedB, "-", "") != b {
			return false
		}
		id := res.Identity()
		if id < 0 || id > 1 {
			return false
		}
		if res.Matches+res.Mismatches+res.Gaps != len(res.AlignedA) {
			return false
		}
		self, err := Global(a, a, Scoring{})
		if err != nil || self.Identity() != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the optimal score never improves by deleting a shared prefix
// character from both sequences plus its match score (weak consistency
// check of the DP).
func TestScoreMonotoneUnderSharedPrefix(t *testing.T) {
	g := simclock.NewRNG(17)
	for i := 0; i < 50; i++ {
		a := randSeq(g, 20)
		b := randSeq(g, 25)
		full, err := Global("G"+a, "G"+b, Scoring{})
		if err != nil {
			t.Fatal(err)
		}
		inner, err := Global(a, b, Scoring{})
		if err != nil {
			t.Fatal(err)
		}
		sc := Scoring{}.normalized()
		if full.Score < inner.Score+sc.Mismatch {
			t.Fatalf("prefix made score collapse: %d vs %d", full.Score, inner.Score)
		}
	}
}
