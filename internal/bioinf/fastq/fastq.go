// Package fastq reads and writes FASTQ sequencing reads with Phred+33
// quality strings — the raw input of the NGS preprocessing workflow.
package fastq

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Read is one sequencing read.
type Read struct {
	// ID is the read identifier (without the leading '@').
	ID string
	// Seq is the nucleotide sequence.
	Seq string
	// Qual is the Phred+33 quality string, same length as Seq.
	Qual string
}

// Errors returned by the parser.
var (
	ErrTruncated   = errors.New("fastq: truncated record")
	ErrBadHeader   = errors.New("fastq: header must start with '@'")
	ErrBadSep      = errors.New("fastq: separator must start with '+'")
	ErrLengthMatch = errors.New("fastq: quality length differs from sequence length")
	ErrBadQuality  = errors.New("fastq: quality symbol out of Phred+33 range")
)

// PhredOffset is the ASCII offset of Phred+33 encoding.
const PhredOffset = 33

// QualityScores decodes the Phred quality values of a read.
func (r Read) QualityScores() []int {
	out := make([]int, len(r.Qual))
	for i := 0; i < len(r.Qual); i++ {
		out[i] = int(r.Qual[i]) - PhredOffset
	}
	return out
}

// MeanQuality returns the average Phred score, 0 for empty reads.
func (r Read) MeanQuality() float64 {
	if len(r.Qual) == 0 {
		return 0
	}
	sum := 0
	for _, q := range r.QualityScores() {
		sum += q
	}
	return float64(sum) / float64(len(r.Qual))
}

// Parse reads all records from rd.
func Parse(rd io.Reader) ([]Read, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Read
	lines := make([]string, 0, 4)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		lines = append(lines, strings.TrimRight(sc.Text(), "\r"))
		if len(lines) < 4 {
			continue
		}
		rec, err := fromLines(lines)
		if err != nil {
			return nil, fmt.Errorf("record ending line %d: %w", lineNo, err)
		}
		out = append(out, rec)
		lines = lines[:0]
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fastq: scan: %w", err)
	}
	if len(lines) != 0 {
		return nil, ErrTruncated
	}
	return out, nil
}

// ParseString reads records from a string.
func ParseString(s string) ([]Read, error) {
	return Parse(strings.NewReader(s))
}

func fromLines(lines []string) (Read, error) {
	if !strings.HasPrefix(lines[0], "@") {
		return Read{}, ErrBadHeader
	}
	if !strings.HasPrefix(lines[2], "+") {
		return Read{}, ErrBadSep
	}
	seq, qual := lines[1], lines[3]
	if len(seq) != len(qual) {
		return Read{}, ErrLengthMatch
	}
	for i := 0; i < len(qual); i++ {
		if qual[i] < PhredOffset || qual[i] > PhredOffset+60 {
			return Read{}, fmt.Errorf("%w: %q", ErrBadQuality, qual[i])
		}
	}
	return Read{ID: strings.TrimPrefix(lines[0], "@"), Seq: seq, Qual: qual}, nil
}

// Write renders reads to w.
func Write(w io.Writer, reads []Read) error {
	bw := bufio.NewWriter(w)
	for _, r := range reads {
		if len(r.Seq) != len(r.Qual) {
			return fmt.Errorf("read %q: %w", r.ID, ErrLengthMatch)
		}
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", r.ID, r.Seq, r.Qual); err != nil {
			return fmt.Errorf("fastq: write: %w", err)
		}
	}
	return bw.Flush()
}

// String renders reads to a string.
func String(reads []Read) string {
	var sb strings.Builder
	_ = Write(&sb, reads)
	return sb.String()
}
