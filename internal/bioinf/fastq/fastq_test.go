package fastq

import (
	"errors"
	"strings"
	"testing"
)

const sample = "@r1 lane1\nACGT\n+\nIIII\n@r2\nGGCC\n+anything\n!!!!\n"

func TestParseTwoReads(t *testing.T) {
	reads, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 2 {
		t.Fatalf("reads = %d, want 2", len(reads))
	}
	if reads[0].ID != "r1 lane1" || reads[0].Seq != "ACGT" || reads[0].Qual != "IIII" {
		t.Fatalf("read0 = %+v", reads[0])
	}
}

func TestQualityScores(t *testing.T) {
	reads, _ := ParseString(sample)
	q := reads[0].QualityScores()
	for _, v := range q {
		if v != 40 { // 'I' = 73, 73-33 = 40
			t.Fatalf("scores = %v, want all 40", q)
		}
	}
	zeros := reads[1].QualityScores()
	for _, v := range zeros {
		if v != 0 { // '!' = 33
			t.Fatalf("scores = %v, want all 0", zeros)
		}
	}
}

func TestMeanQuality(t *testing.T) {
	r := Read{ID: "x", Seq: "AC", Qual: string([]byte{33 + 10, 33 + 30})}
	if got := r.MeanQuality(); got != 20 {
		t.Fatalf("mean = %v, want 20", got)
	}
	var empty Read
	if empty.MeanQuality() != 0 {
		t.Fatal("empty read mean should be 0")
	}
}

func TestTruncatedRejected(t *testing.T) {
	_, err := ParseString("@r1\nACGT\n+\n")
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestBadHeaderRejected(t *testing.T) {
	_, err := ParseString("r1\nACGT\n+\nIIII\n")
	if err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("err = %v", err)
	}
}

func TestBadSeparatorRejected(t *testing.T) {
	_, err := ParseString("@r1\nACGT\nIIII\nIIII\n")
	if err == nil {
		t.Fatal("want ErrBadSep")
	}
}

func TestLengthMismatchRejected(t *testing.T) {
	_, err := ParseString("@r1\nACGT\n+\nIII\n")
	if err == nil {
		t.Fatal("want ErrLengthMatch")
	}
}

func TestQualityRangeEnforced(t *testing.T) {
	_, err := ParseString("@r1\nA\n+\n\x01\n")
	if err == nil {
		t.Fatal("want ErrBadQuality")
	}
}

func TestRoundTrip(t *testing.T) {
	in := []Read{
		{ID: "a", Seq: "ACGTAC", Qual: "IIIIII"},
		{ID: "b", Seq: "GG", Qual: "!5"},
	}
	out, err := ParseString(String(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("reads = %d", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("round trip mismatch: %+v vs %+v", out[i], in[i])
		}
	}
}

func TestWriteRejectsMismatchedLengths(t *testing.T) {
	var sb strings.Builder
	err := Write(&sb, []Read{{ID: "x", Seq: "ACG", Qual: "II"}})
	if !errors.Is(err, ErrLengthMatch) {
		t.Fatalf("err = %v", err)
	}
}
