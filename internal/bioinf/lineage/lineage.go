// Package lineage assigns genomes to named lineages by nearest-centroid
// classification over k-mer profiles — a Pangolin-like classifier for the
// genome-reconstruction workflow's final step.
package lineage

import (
	"errors"
	"fmt"
	"sort"

	"spotverse/internal/bioinf/seq"
)

// Errors returned by the classifier.
var (
	ErrNoLineages = errors.New("lineage: classifier has no reference lineages")
	ErrDupName    = errors.New("lineage: duplicate lineage name")
	ErrEmptySeq   = errors.New("lineage: empty sequence")
)

// DefaultK is the k-mer size used when none is given.
const DefaultK = 8

// Assignment is a classification result.
type Assignment struct {
	// Lineage is the winning lineage name.
	Lineage string
	// Distance is the cosine k-mer distance to the winner.
	Distance float64
	// Confidence in [0,1]: how decisively the winner beat the runner-up.
	Confidence float64
}

// Classifier holds reference lineage profiles.
type Classifier struct {
	k        int
	profiles map[string]map[string]int
	names    []string
}

// NewClassifier returns an empty classifier with k-mer size k (0 takes
// DefaultK).
func NewClassifier(k int) *Classifier {
	if k <= 0 {
		k = DefaultK
	}
	return &Classifier{k: k, profiles: make(map[string]map[string]int)}
}

// AddLineage registers a reference genome under a lineage name.
func (c *Classifier) AddLineage(name, genome string) error {
	if name == "" || genome == "" {
		return ErrEmptySeq
	}
	if _, ok := c.profiles[name]; ok {
		return fmt.Errorf("%w: %q", ErrDupName, name)
	}
	prof, err := seq.KmerProfile(genome, c.k)
	if err != nil {
		return fmt.Errorf("lineage %q: %w", name, err)
	}
	c.profiles[name] = prof
	c.names = append(c.names, name)
	sort.Strings(c.names)
	return nil
}

// Lineages returns the registered lineage names, sorted.
func (c *Classifier) Lineages() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Classify assigns the genome to its nearest lineage.
func (c *Classifier) Classify(genome string) (Assignment, error) {
	if len(c.profiles) == 0 {
		return Assignment{}, ErrNoLineages
	}
	if genome == "" {
		return Assignment{}, ErrEmptySeq
	}
	prof, err := seq.KmerProfile(genome, c.k)
	if err != nil {
		return Assignment{}, err
	}
	best, second := 2.0, 2.0
	winner := ""
	for _, name := range c.names {
		d := seq.CosineDistance(prof, c.profiles[name])
		switch {
		case d < best:
			second = best
			best, winner = d, name
		case d < second:
			second = d
		}
	}
	conf := 0.0
	if second > 0 {
		conf = (second - best) / second
	}
	if conf < 0 {
		conf = 0
	}
	if conf > 1 {
		conf = 1
	}
	return Assignment{Lineage: winner, Distance: best, Confidence: conf}, nil
}
