package lineage

import (
	"errors"
	"testing"

	"spotverse/internal/bioinf/synth"
	"spotverse/internal/bioinf/variant"
	"spotverse/internal/simclock"
)

func TestClassifyRecoversNearestLineage(t *testing.T) {
	rng := simclock.Stream(21, "lineage-test")
	c := NewClassifier(8)
	genomes := map[string]string{}
	for _, name := range []string{"B.1.1.7", "B.1.351", "P.1"} {
		g, err := synth.Genome(rng, 3000)
		if err != nil {
			t.Fatal(err)
		}
		genomes[name] = g
		if err := c.AddLineage(name, g); err != nil {
			t.Fatal(err)
		}
	}
	for name, g := range genomes {
		// A lightly mutated isolate must classify back to its origin.
		f, err := synth.Mutate(rng, g, 0.005, 0)
		if err != nil {
			t.Fatal(err)
		}
		isolate, _, err := variant.Consensus(g, f, variant.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Classify(isolate)
		if err != nil {
			t.Fatal(err)
		}
		if got.Lineage != name {
			t.Fatalf("isolate of %s classified as %s (dist %v)", name, got.Lineage, got.Distance)
		}
		if got.Confidence <= 0.1 {
			t.Fatalf("confidence %v too low for distinct random genomes", got.Confidence)
		}
	}
}

func TestExactMatchDistanceZero(t *testing.T) {
	rng := simclock.Stream(22, "lineage-test2")
	c := NewClassifier(0)
	g, _ := synth.Genome(rng, 2000)
	if err := c.AddLineage("A", g); err != nil {
		t.Fatal(err)
	}
	g2, _ := synth.Genome(rng, 2000)
	if err := c.AddLineage("B", g2); err != nil {
		t.Fatal(err)
	}
	got, err := c.Classify(g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lineage != "A" || got.Distance > 1e-9 {
		t.Fatalf("got %+v", got)
	}
}

func TestErrors(t *testing.T) {
	c := NewClassifier(4)
	if _, err := c.Classify("ACGT"); !errors.Is(err, ErrNoLineages) {
		t.Fatalf("err = %v", err)
	}
	if err := c.AddLineage("", "ACGT"); !errors.Is(err, ErrEmptySeq) {
		t.Fatalf("err = %v", err)
	}
	if err := c.AddLineage("A", "ACGTACGT"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLineage("A", "ACGTACGT"); !errors.Is(err, ErrDupName) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Classify(""); !errors.Is(err, ErrEmptySeq) {
		t.Fatalf("err = %v", err)
	}
}

func TestLineagesSorted(t *testing.T) {
	rng := simclock.Stream(23, "lineage-test3")
	c := NewClassifier(4)
	for _, n := range []string{"z", "a", "m"} {
		g, err := synth.Genome(rng, 200)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddLineage(n, g); err != nil {
			t.Fatal(err)
		}
	}
	names := c.Lineages()
	if len(names) != 3 || names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Fatalf("names = %v", names)
	}
}

func TestDefaultK(t *testing.T) {
	c := NewClassifier(-1)
	if c.k != DefaultK {
		t.Fatalf("k = %d, want %d", c.k, DefaultK)
	}
}
