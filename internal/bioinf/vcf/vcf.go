// Package vcf reads and writes a pragmatic subset of the Variant Call
// Format v4.2: the CHROM/POS/ID/REF/ALT/QUAL/FILTER/INFO columns the
// genome-reconstruction workflow consumes.
package vcf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Variant is one data line.
type Variant struct {
	Chrom string
	// Pos is 1-based, per the VCF spec.
	Pos    int
	ID     string
	Ref    string
	Alt    string
	Qual   float64
	Filter string
	Info   map[string]string
}

// File is a parsed VCF: header meta lines plus variants.
type File struct {
	// Meta holds the "##"-prefixed header lines, verbatim.
	Meta []string
	// Variants are the data lines in file order.
	Variants []Variant
}

// Errors returned by the parser.
var (
	ErrNoColumnHeader = errors.New("vcf: missing #CHROM column header")
	ErrBadColumns     = errors.New("vcf: data line has fewer than 8 columns")
	ErrBadPos         = errors.New("vcf: position is not a positive integer")
	ErrEmptyRef       = errors.New("vcf: empty REF")
)

// Parse reads a VCF from r.
func Parse(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	f := &File{}
	sawHeader := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		switch {
		case text == "":
			continue
		case strings.HasPrefix(text, "##"):
			f.Meta = append(f.Meta, text)
		case strings.HasPrefix(text, "#CHROM"):
			sawHeader = true
		case strings.HasPrefix(text, "#"):
			continue
		default:
			if !sawHeader {
				return nil, fmt.Errorf("line %d: %w", line, ErrNoColumnHeader)
			}
			v, err := parseLine(text)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			f.Variants = append(f.Variants, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("vcf: scan: %w", err)
	}
	if !sawHeader {
		return nil, ErrNoColumnHeader
	}
	return f, nil
}

// ParseString reads a VCF from a string.
func ParseString(s string) (*File, error) {
	return Parse(strings.NewReader(s))
}

func parseLine(text string) (Variant, error) {
	cols := strings.Split(text, "\t")
	if len(cols) < 8 {
		return Variant{}, ErrBadColumns
	}
	pos, err := strconv.Atoi(cols[1])
	if err != nil || pos <= 0 {
		return Variant{}, fmt.Errorf("%w: %q", ErrBadPos, cols[1])
	}
	if cols[3] == "" {
		return Variant{}, ErrEmptyRef
	}
	qual := 0.0
	if cols[5] != "." {
		qual, err = strconv.ParseFloat(cols[5], 64)
		if err != nil {
			return Variant{}, fmt.Errorf("vcf: bad QUAL %q: %w", cols[5], err)
		}
	}
	info := map[string]string{}
	if cols[7] != "." && cols[7] != "" {
		for _, kv := range strings.Split(cols[7], ";") {
			k, v, found := strings.Cut(kv, "=")
			if !found {
				info[k] = ""
				continue
			}
			info[k] = v
		}
	}
	return Variant{
		Chrom:  cols[0],
		Pos:    pos,
		ID:     cols[2],
		Ref:    cols[3],
		Alt:    cols[4],
		Qual:   qual,
		Filter: cols[6],
		Info:   info,
	}, nil
}

// Write renders the file to w.
func Write(w io.Writer, f *File) error {
	bw := bufio.NewWriter(w)
	for _, m := range f.Meta {
		if _, err := bw.WriteString(m + "\n"); err != nil {
			return fmt.Errorf("vcf: write: %w", err)
		}
	}
	if _, err := bw.WriteString("#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n"); err != nil {
		return fmt.Errorf("vcf: write: %w", err)
	}
	for _, v := range f.Variants {
		qual := "."
		if v.Qual != 0 {
			qual = strconv.FormatFloat(v.Qual, 'g', -1, 64)
		}
		info := "."
		if len(v.Info) > 0 {
			keys := make([]string, 0, len(v.Info))
			for k := range v.Info {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				if v.Info[k] == "" {
					parts = append(parts, k)
				} else {
					parts = append(parts, k+"="+v.Info[k])
				}
			}
			info = strings.Join(parts, ";")
		}
		id := v.ID
		if id == "" {
			id = "."
		}
		filter := v.Filter
		if filter == "" {
			filter = "PASS"
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
			v.Chrom, v.Pos, id, v.Ref, v.Alt, qual, filter, info); err != nil {
			return fmt.Errorf("vcf: write: %w", err)
		}
	}
	return bw.Flush()
}

// String renders the file to a string.
func String(f *File) string {
	var sb strings.Builder
	_ = Write(&sb, f)
	return sb.String()
}

// SortByPosition orders variants by (chrom, pos), stable.
func (f *File) SortByPosition() {
	sort.SliceStable(f.Variants, func(i, j int) bool {
		if f.Variants[i].Chrom != f.Variants[j].Chrom {
			return f.Variants[i].Chrom < f.Variants[j].Chrom
		}
		return f.Variants[i].Pos < f.Variants[j].Pos
	})
}
