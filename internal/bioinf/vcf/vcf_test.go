package vcf

import (
	"errors"
	"strings"
	"testing"
)

const sample = `##fileformat=VCFv4.2
##source=test
#CHROM	POS	ID	REF	ALT	QUAL	FILTER	INFO
chr1	5	rs1	A	T	60	PASS	DP=30;AF=0.5
chr1	9	.	AC	A	45.5	PASS	.
chr1	2	ins2	G	GTT	.	lowqual	FLAG
`

func TestParse(t *testing.T) {
	f, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Meta) != 2 || len(f.Variants) != 3 {
		t.Fatalf("meta=%d variants=%d", len(f.Meta), len(f.Variants))
	}
	v := f.Variants[0]
	if v.Chrom != "chr1" || v.Pos != 5 || v.Ref != "A" || v.Alt != "T" || v.Qual != 60 {
		t.Fatalf("v0 = %+v", v)
	}
	if v.Info["DP"] != "30" || v.Info["AF"] != "0.5" {
		t.Fatalf("info = %v", v.Info)
	}
	if f.Variants[2].Info["FLAG"] != "" {
		t.Fatalf("flag info = %v", f.Variants[2].Info)
	}
	if f.Variants[1].Qual != 45.5 {
		t.Fatalf("qual = %v", f.Variants[1].Qual)
	}
}

func TestMissingHeaderRejected(t *testing.T) {
	_, err := ParseString("chr1\t5\t.\tA\tT\t.\tPASS\t.\n")
	if !errors.Is(err, ErrNoColumnHeader) {
		t.Fatalf("err = %v", err)
	}
	_, err = ParseString("##meta\n")
	if !errors.Is(err, ErrNoColumnHeader) {
		t.Fatalf("empty file err = %v", err)
	}
}

func TestBadColumnsRejected(t *testing.T) {
	_, err := ParseString("#CHROM\tPOS\nchr1\t5\t.\tA\n")
	if !errors.Is(err, ErrBadColumns) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadPosRejected(t *testing.T) {
	for _, pos := range []string{"0", "-3", "abc"} {
		_, err := ParseString("#CHROM\nchr1\t" + pos + "\t.\tA\tT\t.\tPASS\t.\n")
		if !errors.Is(err, ErrBadPos) {
			t.Fatalf("pos %q: err = %v", pos, err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	f, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseString(String(f))
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Variants) != len(f.Variants) {
		t.Fatalf("variants = %d vs %d", len(again.Variants), len(f.Variants))
	}
	for i := range f.Variants {
		a, b := f.Variants[i], again.Variants[i]
		if a.Chrom != b.Chrom || a.Pos != b.Pos || a.Ref != b.Ref || a.Alt != b.Alt {
			t.Fatalf("variant %d mismatch: %+v vs %+v", i, a, b)
		}
		for k, v := range a.Info {
			if b.Info[k] != v {
				t.Fatalf("variant %d info %q: %q vs %q", i, k, v, b.Info[k])
			}
		}
	}
}

func TestSortByPosition(t *testing.T) {
	f, _ := ParseString(sample)
	f.SortByPosition()
	if f.Variants[0].Pos != 2 || f.Variants[1].Pos != 5 || f.Variants[2].Pos != 9 {
		t.Fatalf("order = %d,%d,%d", f.Variants[0].Pos, f.Variants[1].Pos, f.Variants[2].Pos)
	}
}

func TestWriteDotDefaults(t *testing.T) {
	out := String(&File{Variants: []Variant{{Chrom: "c", Pos: 1, Ref: "A", Alt: "T"}}})
	if !strings.Contains(out, "c\t1\t.\tA\tT\t.\tPASS\t.") {
		t.Fatalf("out = %q", out)
	}
}

func TestCommentLinesSkipped(t *testing.T) {
	f, err := ParseString("#CHROM header\n#random comment\nchr1\t1\t.\tA\tT\t.\tPASS\t.\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Variants) != 1 {
		t.Fatalf("variants = %d", len(f.Variants))
	}
}
