package diversity

import (
	"errors"
	"math"
	"testing"

	"spotverse/internal/bioinf/synth"
	"spotverse/internal/simclock"
)

func TestShannonUniform(t *testing.T) {
	h, err := Shannon([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-math.Log(4)) > 1e-12 {
		t.Fatalf("H = %v, want ln(4)", h)
	}
}

func TestShannonSingleSpeciesZero(t *testing.T) {
	h, err := Shannon([]float64{5, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("H = %v, want 0", h)
	}
}

func TestSimpson(t *testing.T) {
	s, err := Simpson([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("Simpson = %v, want 0.5", s)
	}
	s, _ = Simpson([]float64{10, 0})
	if s != 0 {
		t.Fatalf("single-species Simpson = %v, want 0", s)
	}
}

func TestObserved(t *testing.T) {
	n, err := Observed([]float64{3, 0, 1, 0, 2})
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestPielou(t *testing.T) {
	j, err := Pielou([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-1) > 1e-12 {
		t.Fatalf("uniform evenness = %v, want 1", j)
	}
	j, _ = Pielou([]float64{10, 0})
	if j != 0 {
		t.Fatalf("single-species evenness = %v, want 0", j)
	}
	skew, _ := Pielou([]float64{100, 1, 1})
	if skew >= 1 || skew <= 0 {
		t.Fatalf("skewed evenness = %v, want (0,1)", skew)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Shannon(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Shannon([]float64{0, 0}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("all-zero err = %v", err)
	}
	if _, err := Simpson([]float64{1, -1}); !errors.Is(err, ErrNegative) {
		t.Fatalf("err = %v", err)
	}
}

func TestRarefactionMonotone(t *testing.T) {
	counts := []int{50, 30, 10, 5, 3, 1, 1}
	depths := []int{1, 10, 50, 100}
	curve, err := Rarefaction(counts, depths)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-1e-9 {
			t.Fatalf("rarefaction not monotone: %v", curve)
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	full, err := Rarefaction(counts, []int{total})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full[0]-7) > 1e-9 {
		t.Fatalf("full-depth richness = %v, want 7", full[0])
	}
}

func TestRarefactionDepthOne(t *testing.T) {
	curve, err := Rarefaction([]int{10, 10}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(curve[0]-1) > 1e-9 {
		t.Fatalf("depth-1 richness = %v, want 1", curve[0])
	}
}

func TestRarefactionErrors(t *testing.T) {
	if _, err := Rarefaction(nil, []int{1}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Rarefaction([]int{1, -2}, []int{1}); !errors.Is(err, ErrNegative) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Rarefaction([]int{0, 0}, []int{1}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestSyntheticCommunityMetrics(t *testing.T) {
	rng := simclock.Stream(41, "diversity-test")
	prof, err := synth.CommunityProfile(rng, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, sample := range prof {
		h, err := Shannon(sample)
		if err != nil {
			t.Fatal(err)
		}
		if h <= 0 || h > math.Log(50) {
			t.Fatalf("H = %v outside (0, ln 50]", h)
		}
		s, err := Simpson(sample)
		if err != nil {
			t.Fatal(err)
		}
		if s <= 0 || s >= 1 {
			t.Fatalf("Simpson = %v outside (0,1)", s)
		}
		j, err := Pielou(sample)
		if err != nil {
			t.Fatal(err)
		}
		if j <= 0 || j > 1 {
			t.Fatalf("evenness = %v outside (0,1]", j)
		}
	}
}
