// Package diversity computes the alpha-diversity metrics of the QIIME 2
// workflow's final analysis step: Shannon entropy, Simpson index,
// observed richness, Pielou evenness, and rarefaction curves.
package diversity

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the package.
var (
	ErrEmpty    = errors.New("diversity: empty abundance vector")
	ErrNegative = errors.New("diversity: negative abundance")
)

func total(abundances []float64) (float64, error) {
	if len(abundances) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for i, a := range abundances {
		if a < 0 {
			return 0, fmt.Errorf("%w at index %d", ErrNegative, i)
		}
		sum += a
	}
	if sum == 0 {
		return 0, ErrEmpty
	}
	return sum, nil
}

// Shannon returns the Shannon entropy H' = -sum(p ln p).
func Shannon(abundances []float64) (float64, error) {
	sum, err := total(abundances)
	if err != nil {
		return 0, err
	}
	var h float64
	for _, a := range abundances {
		if a == 0 {
			continue
		}
		p := a / sum
		h -= p * math.Log(p)
	}
	return h, nil
}

// Simpson returns the Simpson diversity 1 - sum(p^2).
func Simpson(abundances []float64) (float64, error) {
	sum, err := total(abundances)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, a := range abundances {
		p := a / sum
		s += p * p
	}
	return 1 - s, nil
}

// Observed returns the count of species with non-zero abundance.
func Observed(abundances []float64) (int, error) {
	if _, err := total(abundances); err != nil {
		return 0, err
	}
	n := 0
	for _, a := range abundances {
		if a > 0 {
			n++
		}
	}
	return n, nil
}

// Pielou returns evenness J' = H'/ln(S); 0 when only one species exists.
func Pielou(abundances []float64) (float64, error) {
	h, err := Shannon(abundances)
	if err != nil {
		return 0, err
	}
	s, err := Observed(abundances)
	if err != nil {
		return 0, err
	}
	if s <= 1 {
		return 0, nil
	}
	return h / math.Log(float64(s)), nil
}

// Rarefaction returns the expected species richness at each sampling
// depth using the analytic hypergeometric formula over integer counts.
func Rarefaction(counts []int, depths []int) ([]float64, error) {
	if len(counts) == 0 {
		return nil, ErrEmpty
	}
	n := 0
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("%w at index %d", ErrNegative, i)
		}
		n += c
	}
	if n == 0 {
		return nil, ErrEmpty
	}
	out := make([]float64, len(depths))
	for di, depth := range depths {
		if depth <= 0 {
			out[di] = 0
			continue
		}
		if depth > n {
			depth = n
		}
		var expected float64
		for _, c := range counts {
			if c == 0 {
				continue
			}
			// P(species absent from subsample) = C(n-c, depth)/C(n, depth),
			// computed in log space for stability.
			if n-c < depth {
				expected++ // species guaranteed present
				continue
			}
			logP := logChoose(n-c, depth) - logChoose(n, depth)
			expected += 1 - math.Exp(logP)
		}
		out[di] = expected
	}
	return out, nil
}

func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}
