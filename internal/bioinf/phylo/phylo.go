// Package phylo builds phylogenetic trees with the neighbour-joining
// algorithm over k-mer distance matrices and renders them in Newick
// format — the phylogeny step of the QIIME 2-style workflow.
package phylo

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"spotverse/internal/bioinf/seq"
)

// Errors returned by the package.
var (
	ErrTooFewTaxa  = errors.New("phylo: need at least 2 taxa")
	ErrBadMatrix   = errors.New("phylo: distance matrix not square")
	ErrDupTaxon    = errors.New("phylo: duplicate taxon name")
	ErrAsymmetric  = errors.New("phylo: distance matrix not symmetric")
	ErrNegativeDst = errors.New("phylo: negative distance")
)

// Node is a tree vertex. Leaves carry names; internal nodes have children.
type Node struct {
	Name     string
	Children []*Node
	// Length is the branch length to the parent.
	Length float64
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Leaves returns the names of all leaves under the node, in tree order.
func (n *Node) Leaves() []string {
	if n.IsLeaf() {
		return []string{n.Name}
	}
	var out []string
	for _, c := range n.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Newick renders the tree in Newick format with branch lengths.
func (n *Node) Newick() string {
	var sb strings.Builder
	n.writeNewick(&sb, true)
	sb.WriteByte(';')
	return sb.String()
}

func (n *Node) writeNewick(sb *strings.Builder, root bool) {
	if n.IsLeaf() {
		sb.WriteString(n.Name)
	} else {
		sb.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				sb.WriteByte(',')
			}
			c.writeNewick(sb, false)
		}
		sb.WriteByte(')')
		if n.Name != "" {
			sb.WriteString(n.Name)
		}
	}
	if !root {
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatFloat(n.Length, 'f', 4, 64))
	}
}

// DistanceMatrix computes pairwise k-mer cosine distances between named
// sequences.
func DistanceMatrix(names []string, seqs []string, k int) ([][]float64, error) {
	if len(names) != len(seqs) {
		return nil, fmt.Errorf("phylo: %d names vs %d sequences", len(names), len(seqs))
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			return nil, fmt.Errorf("%w: %q", ErrDupTaxon, n)
		}
		seen[n] = true
	}
	profiles := make([]map[string]int, len(seqs))
	for i, s := range seqs {
		p, err := seq.KmerProfile(s, k)
		if err != nil {
			return nil, fmt.Errorf("taxon %q: %w", names[i], err)
		}
		profiles[i] = p
	}
	n := len(seqs)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist := seq.CosineDistance(profiles[i], profiles[j])
			d[i][j], d[j][i] = dist, dist
		}
	}
	return d, nil
}

func validateMatrix(names []string, d [][]float64) error {
	n := len(names)
	if n < 2 {
		return ErrTooFewTaxa
	}
	if len(d) != n {
		return ErrBadMatrix
	}
	for i := range d {
		if len(d[i]) != n {
			return ErrBadMatrix
		}
		for j := range d[i] {
			if d[i][j] < 0 {
				return fmt.Errorf("%w: d[%d][%d]=%v", ErrNegativeDst, i, j, d[i][j])
			}
			if d[i][j] != d[j][i] {
				return fmt.Errorf("%w: d[%d][%d] != d[%d][%d]", ErrAsymmetric, i, j, j, i)
			}
		}
	}
	return nil
}

// NeighborJoining builds an (unrooted, represented with a trifurcating
// root) tree from the distance matrix using Saitou-Nei neighbour joining.
func NeighborJoining(names []string, dist [][]float64) (*Node, error) {
	if err := validateMatrix(names, dist); err != nil {
		return nil, err
	}
	// Working copies.
	n := len(names)
	nodes := make([]*Node, n)
	for i, name := range names {
		nodes[i] = &Node{Name: name}
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		copy(d[i], dist[i])
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}

	for len(active) > 2 {
		m := len(active)
		// Row sums over active set.
		rowSum := make(map[int]float64, m)
		for _, i := range active {
			var s float64
			for _, j := range active {
				s += d[i][j]
			}
			rowSum[i] = s
		}
		// Pick the pair minimising the Q criterion.
		bestI, bestJ := -1, -1
		bestQ := 0.0
		first := true
		for a := 0; a < m; a++ {
			for b := a + 1; b < m; b++ {
				i, j := active[a], active[b]
				q := float64(m-2)*d[i][j] - rowSum[i] - rowSum[j]
				if first || q < bestQ {
					bestQ, bestI, bestJ, first = q, i, j, false
				}
			}
		}
		// Branch lengths to the new node.
		di := 0.5*d[bestI][bestJ] + (rowSum[bestI]-rowSum[bestJ])/(2*float64(m-2))
		dj := d[bestI][bestJ] - di
		if di < 0 {
			di = 0
		}
		if dj < 0 {
			dj = 0
		}
		nodes[bestI].Length = di
		nodes[bestJ].Length = dj
		parent := &Node{Children: []*Node{nodes[bestI], nodes[bestJ]}}

		// Distances from the new node to the remaining taxa.
		newRow := make([]float64, len(d))
		for _, k := range active {
			if k == bestI || k == bestJ {
				continue
			}
			newRow[k] = 0.5 * (d[bestI][k] + d[bestJ][k] - d[bestI][bestJ])
			if newRow[k] < 0 {
				newRow[k] = 0
			}
		}
		// Reuse slot bestI for the new node; retire bestJ.
		nodes[bestI] = parent
		for _, k := range active {
			if k == bestI || k == bestJ {
				continue
			}
			d[bestI][k] = newRow[k]
			d[k][bestI] = newRow[k]
		}
		d[bestI][bestI] = 0
		next := active[:0]
		for _, k := range active {
			if k != bestJ {
				next = append(next, k)
			}
		}
		active = next
	}

	i, j := active[0], active[1]
	nodes[i].Length = d[i][j] / 2
	nodes[j].Length = d[i][j] / 2
	return &Node{Children: []*Node{nodes[i], nodes[j]}}, nil
}

// BuildFromSequences is the convenience path: distance matrix + NJ.
func BuildFromSequences(names []string, seqs []string, k int) (*Node, error) {
	d, err := DistanceMatrix(names, seqs, k)
	if err != nil {
		return nil, err
	}
	return NeighborJoining(names, d)
}
