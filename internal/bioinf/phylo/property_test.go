package phylo

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"spotverse/internal/simclock"
)

// Property: for any valid symmetric distance matrix, neighbour joining
// returns a tree containing every taxon exactly once, with balanced
// Newick output and non-negative branch lengths.
func TestNJPreservesTaxa(t *testing.T) {
	g := simclock.NewRNG(55)
	f := func(nRaw uint8) bool {
		n := int(nRaw%10) + 2 // 2..11 taxa
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("t%02d", i)
		}
		d := make([][]float64, n)
		for i := range d {
			d[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := g.Uniform(0.1, 5)
				d[i][j], d[j][i] = v, v
			}
		}
		tree, err := NeighborJoining(names, d)
		if err != nil {
			return false
		}
		leaves := tree.Leaves()
		if len(leaves) != n {
			return false
		}
		seen := map[string]bool{}
		for _, l := range leaves {
			if seen[l] {
				return false
			}
			seen[l] = true
		}
		nw := tree.Newick()
		if strings.Count(nw, "(") != strings.Count(nw, ")") || !strings.HasSuffix(nw, ";") {
			return false
		}
		return noNegativeLengths(tree)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func noNegativeLengths(n *Node) bool {
	if n.Length < 0 {
		return false
	}
	for _, c := range n.Children {
		if !noNegativeLengths(c) {
			return false
		}
	}
	return true
}

// Property: NJ recovers additive trees exactly — for a matrix generated
// from a known tree metric, the reconstructed topology pairs the right
// cherries.
func TestNJRecoversAdditiveCherries(t *testing.T) {
	g := simclock.NewRNG(56)
	for trial := 0; trial < 30; trial++ {
		// Build an additive 4-taxon metric: ((A,B),(C,D)) with random
		// positive branch lengths.
		a, b, c, d := g.Uniform(0.5, 3), g.Uniform(0.5, 3), g.Uniform(0.5, 3), g.Uniform(0.5, 3)
		mid := g.Uniform(1, 4)
		names := []string{"A", "B", "C", "D"}
		dist := [][]float64{
			{0, a + b, a + mid + c, a + mid + d},
			{a + b, 0, b + mid + c, b + mid + d},
			{a + mid + c, b + mid + c, 0, c + d},
			{a + mid + d, b + mid + d, c + d, 0},
		}
		tree, err := NeighborJoining(names, dist)
		if err != nil {
			t.Fatal(err)
		}
		// The tree is unrooted; depending on where the final join lands,
		// either {A,B} or {C,D} shows up as a cherry — but never a mixed
		// pair like {A,C}.
		ab := pairOf(tree, "A") == "B" || pairOf(tree, "B") == "A"
		cd := pairOf(tree, "C") == "D" || pairOf(tree, "D") == "C"
		if !ab && !cd {
			t.Fatalf("trial %d: no correct cherry in %s", trial, tree.Newick())
		}
		for _, wrong := range []struct{ x, y string }{{"A", "C"}, {"A", "D"}, {"B", "C"}, {"B", "D"}} {
			if pairOf(tree, wrong.x) == wrong.y {
				t.Fatalf("trial %d: wrong cherry {%s,%s} in %s", trial, wrong.x, wrong.y, tree.Newick())
			}
		}
	}
}
