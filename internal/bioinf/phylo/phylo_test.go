package phylo

import (
	"errors"
	"strings"
	"testing"

	"spotverse/internal/bioinf/synth"
	"spotverse/internal/bioinf/variant"
	"spotverse/internal/simclock"
)

func TestNeighborJoiningFourTaxa(t *testing.T) {
	// Classic additive matrix: ((A,B),(C,D)).
	names := []string{"A", "B", "C", "D"}
	d := [][]float64{
		{0, 2, 7, 7},
		{2, 0, 7, 7},
		{7, 7, 0, 2},
		{7, 7, 2, 0},
	}
	tree, err := NeighborJoining(names, d)
	if err != nil {
		t.Fatal(err)
	}
	leaves := tree.Leaves()
	if len(leaves) != 4 {
		t.Fatalf("leaves = %v", leaves)
	}
	nw := tree.Newick()
	if !strings.HasSuffix(nw, ";") {
		t.Fatalf("newick = %q", nw)
	}
	// A and B must be siblings: the newick should contain them adjacent
	// inside one set of parens (order within pair may vary).
	if !strings.Contains(nw, "A:") || !strings.Contains(nw, "B:") {
		t.Fatalf("newick = %q", nw)
	}
	pair := pairOf(tree, "A")
	if pair != "B" {
		t.Fatalf("A paired with %q, want B (newick %s)", pair, nw)
	}
}

// pairOf returns the other leaf sharing A's immediate parent, if the
// parent is a cherry.
func pairOf(root *Node, name string) string {
	var find func(n *Node) string
	find = func(n *Node) string {
		if n.IsLeaf() {
			return ""
		}
		if len(n.Children) == 2 && n.Children[0].IsLeaf() && n.Children[1].IsLeaf() {
			if n.Children[0].Name == name {
				return n.Children[1].Name
			}
			if n.Children[1].Name == name {
				return n.Children[0].Name
			}
		}
		for _, c := range n.Children {
			if got := find(c); got != "" {
				return got
			}
		}
		return ""
	}
	return find(root)
}

func TestTwoTaxa(t *testing.T) {
	tree, err := NeighborJoining([]string{"A", "B"}, [][]float64{{0, 4}, {4, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Leaves()) != 2 {
		t.Fatalf("leaves = %v", tree.Leaves())
	}
	if tree.Children[0].Length != 2 || tree.Children[1].Length != 2 {
		t.Fatalf("branch lengths = %v, %v", tree.Children[0].Length, tree.Children[1].Length)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NeighborJoining([]string{"A"}, [][]float64{{0}}); !errors.Is(err, ErrTooFewTaxa) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NeighborJoining([]string{"A", "B"}, [][]float64{{0, 1}}); !errors.Is(err, ErrBadMatrix) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NeighborJoining([]string{"A", "B"}, [][]float64{{0, 1}, {2, 0}}); !errors.Is(err, ErrAsymmetric) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NeighborJoining([]string{"A", "B"}, [][]float64{{0, -1}, {-1, 0}}); !errors.Is(err, ErrNegativeDst) {
		t.Fatalf("err = %v", err)
	}
}

func TestDistanceMatrixValidation(t *testing.T) {
	if _, err := DistanceMatrix([]string{"A"}, []string{"ACGT", "ACGT"}, 3); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := DistanceMatrix([]string{"A", "A"}, []string{"ACGT", "ACGT"}, 3); !errors.Is(err, ErrDupTaxon) {
		t.Fatalf("err = %v", err)
	}
}

func TestDistanceMatrixProperties(t *testing.T) {
	rng := simclock.Stream(31, "phylo-test")
	names := []string{"a", "b", "c"}
	seqs := make([]string, 3)
	for i := range seqs {
		g, err := synth.Genome(rng, 800)
		if err != nil {
			t.Fatal(err)
		}
		seqs[i] = g
	}
	d, err := DistanceMatrix(names, seqs, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d {
		if d[i][i] != 0 {
			t.Fatalf("diagonal %d = %v", i, d[i][i])
		}
		for j := range d {
			if d[i][j] != d[j][i] {
				t.Fatal("asymmetric matrix")
			}
		}
	}
}

// TestRelatedSequencesClusterTogether is the biological sanity check:
// two mutated isolates of one genome must pair with each other, not with
// an unrelated genome.
func TestRelatedSequencesClusterTogether(t *testing.T) {
	rng := simclock.Stream(33, "phylo-cluster")
	base, err := synth.Genome(rng, 2000)
	if err != nil {
		t.Fatal(err)
	}
	other, err := synth.Genome(rng, 2000)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(g string) string {
		f, err := synth.Mutate(rng, g, 0.003, 0)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := variant.Consensus(g, f, variant.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	names := []string{"iso1", "iso2", "out1", "out2"}
	seqs := []string{mk(base), mk(base), mk(other), mk(other)}
	tree, err := BuildFromSequences(names, seqs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := pairOf(tree, "iso1"); got != "iso2" {
		t.Fatalf("iso1 paired with %q, want iso2 (%s)", got, tree.Newick())
	}
}

func TestNewickParsesStructurally(t *testing.T) {
	tree, err := NeighborJoining(
		[]string{"A", "B", "C"},
		[][]float64{{0, 2, 3}, {2, 0, 3}, {3, 3, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	nw := tree.Newick()
	if strings.Count(nw, "(") != strings.Count(nw, ")") {
		t.Fatalf("unbalanced parens: %q", nw)
	}
	for _, name := range []string{"A", "B", "C"} {
		if !strings.Contains(nw, name+":") {
			t.Fatalf("missing %s in %q", name, nw)
		}
	}
}
