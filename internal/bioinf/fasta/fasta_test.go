package fasta

import (
	"strings"
	"testing"
)

func TestReadSingleRecord(t *testing.T) {
	recs, err := ReadString(">seq1 a viral isolate\nACGT\nACGT\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.ID != "seq1" || r.Description != "a viral isolate" || r.Seq != "ACGTACGT" {
		t.Fatalf("record = %+v", r)
	}
}

func TestReadMultipleRecords(t *testing.T) {
	recs, err := ReadString(">a\nAC\n>b\nGT\n>c desc\nNN\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[1].ID != "b" || recs[2].Seq != "NN" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestBlankLinesIgnored(t *testing.T) {
	recs, err := ReadString("\n>a\n\nAC\n\nGT\n")
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Seq != "ACGT" {
		t.Fatalf("seq = %q", recs[0].Seq)
	}
}

func TestSequenceBeforeHeaderRejected(t *testing.T) {
	if _, err := ReadString("ACGT\n>a\nAC\n"); err == nil {
		t.Fatal("want ErrNoHeader")
	}
}

func TestEmptyIDRejected(t *testing.T) {
	if _, err := ReadString("> description only\nAC\n"); err == nil {
		t.Fatal("want ErrEmptyID")
	}
}

func TestInvalidSymbolRejected(t *testing.T) {
	if _, err := ReadString(">a\nACGT7\n"); err == nil {
		t.Fatal("want ErrBadSymbol")
	}
}

func TestIUPACAndGapsAccepted(t *testing.T) {
	if _, err := ReadString(">a\nRYSWKMBDHVN-acgt\n"); err != nil {
		t.Fatalf("IUPAC codes rejected: %v", err)
	}
}

func TestWriteWrapsLines(t *testing.T) {
	long := strings.Repeat("ACGT", 30) // 120 chars
	out := String([]Record{{ID: "x", Seq: long}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 70 + 50
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if len(lines[1]) != 70 || len(lines[2]) != 50 {
		t.Fatalf("wrap widths = %d,%d", len(lines[1]), len(lines[2]))
	}
}

func TestRoundTrip(t *testing.T) {
	in := []Record{
		{ID: "a", Description: "first", Seq: strings.Repeat("ACGTN", 33)},
		{ID: "b", Seq: "GGCC"},
	}
	recs, err := ReadString(String(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	for i := range in {
		if recs[i].ID != in[i].ID || recs[i].Seq != in[i].Seq || recs[i].Description != in[i].Description {
			t.Fatalf("round trip mismatch at %d: %+v vs %+v", i, recs[i], in[i])
		}
	}
}

func TestWriteEmptyIDRejected(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, []Record{{Seq: "AC"}}, 0); err == nil {
		t.Fatal("empty ID should be rejected on write")
	}
}

func TestEmptyInput(t *testing.T) {
	recs, err := ReadString("")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("records = %d, want 0", len(recs))
	}
}
