// Package fasta reads and writes FASTA-formatted nucleotide sequences,
// the interchange format the genome-reconstruction workflow emits.
package fasta

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Record is one FASTA entry.
type Record struct {
	// ID is the first whitespace-delimited token of the header.
	ID string
	// Description is the remainder of the header line.
	Description string
	// Seq is the sequence with line breaks removed.
	Seq string
}

// Errors returned by the parser.
var (
	ErrNoHeader  = errors.New("fasta: sequence data before first header")
	ErrEmptyID   = errors.New("fasta: empty record ID")
	ErrBadSymbol = errors.New("fasta: invalid sequence symbol")
)

// validSymbols covers IUPAC nucleotide codes plus gap characters.
const validSymbols = "ACGTUNRYSWKMBDHVacgtunryswkmbdhv-*"

func validSeq(s string) error {
	for i := 0; i < len(s); i++ {
		if !strings.ContainsRune(validSymbols, rune(s[i])) {
			return fmt.Errorf("%w: %q at offset %d", ErrBadSymbol, s[i], i)
		}
	}
	return nil
}

// Read parses all records from r.
func Read(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		out []Record
		cur *Record
		sb  strings.Builder
	)
	flush := func() {
		if cur != nil {
			cur.Seq = sb.String()
			out = append(out, *cur)
			sb.Reset()
		}
	}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r\n ")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ">") {
			flush()
			header := strings.TrimPrefix(text, ">")
			id, desc, _ := strings.Cut(header, " ")
			if id == "" {
				return nil, fmt.Errorf("line %d: %w", line, ErrEmptyID)
			}
			cur = &Record{ID: id, Description: desc}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("line %d: %w", line, ErrNoHeader)
		}
		if err := validSeq(text); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		sb.WriteString(text)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fasta: scan: %w", err)
	}
	flush()
	return out, nil
}

// ReadString parses records from a string.
func ReadString(s string) ([]Record, error) {
	return Read(strings.NewReader(s))
}

// Write renders records to w, wrapping sequences at width columns
// (default 70 when width <= 0).
func Write(w io.Writer, recs []Record, width int) error {
	if width <= 0 {
		width = 70
	}
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if rec.ID == "" {
			return ErrEmptyID
		}
		header := ">" + rec.ID
		if rec.Description != "" {
			header += " " + rec.Description
		}
		if _, err := bw.WriteString(header + "\n"); err != nil {
			return fmt.Errorf("fasta: write: %w", err)
		}
		for i := 0; i < len(rec.Seq); i += width {
			end := i + width
			if end > len(rec.Seq) {
				end = len(rec.Seq)
			}
			if _, err := bw.WriteString(rec.Seq[i:end] + "\n"); err != nil {
				return fmt.Errorf("fasta: write: %w", err)
			}
		}
	}
	return bw.Flush()
}

// String renders records with default wrapping.
func String(recs []Record) string {
	var sb strings.Builder
	// strings.Builder never errors.
	_ = Write(&sb, recs, 0)
	return sb.String()
}
