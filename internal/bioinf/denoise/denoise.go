// Package denoise implements a DADA2-like amplicon denoising step:
// quality filtering, dereplication into unique sequences with abundances,
// and absorption of likely error variants into more abundant neighbours.
package denoise

import (
	"errors"
	"sort"

	"spotverse/internal/bioinf/fastq"
	"spotverse/internal/bioinf/seq"
)

// ErrNoReads is returned when denoising an empty input.
var ErrNoReads = errors.New("denoise: no reads")

// Options tune the pipeline.
type Options struct {
	// MinQuality drops reads whose mean Phred is below this (default 20).
	MinQuality float64
	// MaxErrorDistance absorbs a variant into a neighbour within this
	// Hamming distance (default 2).
	MaxErrorDistance int
	// MinFoldDifference requires the absorbing sequence to be at least
	// this many times more abundant (default 4).
	MinFoldDifference int
}

func (o Options) normalized() Options {
	if o.MinQuality <= 0 {
		o.MinQuality = 20
	}
	if o.MaxErrorDistance <= 0 {
		o.MaxErrorDistance = 2
	}
	if o.MinFoldDifference <= 0 {
		o.MinFoldDifference = 4
	}
	return o
}

// SequenceVariant is an inferred true sequence with its abundance.
type SequenceVariant struct {
	Seq       string
	Abundance int
}

// Result summarises a denoising run.
type Result struct {
	Input          int
	QualityDropped int
	UniqueBefore   int
	Variants       []SequenceVariant
	Absorbed       int
}

// Run denoises reads. All reads must have equal length for the
// Hamming-based merge; unequal-length uniques are kept as-is.
func Run(reads []fastq.Read, opts Options) (*Result, error) {
	if len(reads) == 0 {
		return nil, ErrNoReads
	}
	opts = opts.normalized()
	res := &Result{Input: len(reads)}

	counts := make(map[string]int)
	for _, r := range reads {
		if r.MeanQuality() < opts.MinQuality {
			res.QualityDropped++
			continue
		}
		counts[r.Seq]++
	}
	res.UniqueBefore = len(counts)

	uniq := make([]SequenceVariant, 0, len(counts))
	for s, n := range counts {
		uniq = append(uniq, SequenceVariant{Seq: s, Abundance: n})
	}
	// Most abundant first; ties broken lexicographically for determinism.
	sort.Slice(uniq, func(i, j int) bool {
		if uniq[i].Abundance != uniq[j].Abundance {
			return uniq[i].Abundance > uniq[j].Abundance
		}
		return uniq[i].Seq < uniq[j].Seq
	})

	var kept []SequenceVariant
	for _, cand := range uniq {
		absorbed := false
		for k := range kept {
			if len(kept[k].Seq) != len(cand.Seq) {
				continue
			}
			d, err := seq.Hamming(kept[k].Seq, cand.Seq)
			if err != nil {
				continue
			}
			if d <= opts.MaxErrorDistance && kept[k].Abundance >= cand.Abundance*opts.MinFoldDifference {
				kept[k].Abundance += cand.Abundance
				absorbed = true
				res.Absorbed++
				break
			}
		}
		if !absorbed {
			kept = append(kept, cand)
		}
	}
	// Re-sort: absorption may have reordered abundances.
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Abundance != kept[j].Abundance {
			return kept[i].Abundance > kept[j].Abundance
		}
		return kept[i].Seq < kept[j].Seq
	})
	res.Variants = kept
	return res, nil
}
