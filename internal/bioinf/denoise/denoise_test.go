package denoise

import (
	"strings"
	"testing"

	"spotverse/internal/bioinf/fastq"
)

func rd(seq string, qual byte) fastq.Read {
	return fastq.Read{ID: "r", Seq: seq, Qual: strings.Repeat(string(qual), len(seq))}
}

func repeat(r fastq.Read, n int) []fastq.Read {
	out := make([]fastq.Read, n)
	for i := range out {
		out[i] = r
	}
	return out
}

func TestQualityFilterDrops(t *testing.T) {
	reads := append(repeat(rd("ACGTACGT", 'I'), 5), repeat(rd("ACGTACGT", '#'), 3)...)
	res, err := Run(reads, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.QualityDropped != 3 {
		t.Fatalf("dropped = %d, want 3", res.QualityDropped)
	}
	if len(res.Variants) != 1 || res.Variants[0].Abundance != 5 {
		t.Fatalf("variants = %+v", res.Variants)
	}
}

func TestErrorVariantAbsorbed(t *testing.T) {
	true1 := "ACGTACGTAC"
	err1 := "ACGTACGTAT" // 1 mismatch, low abundance
	reads := append(repeat(rd(true1, 'I'), 20), repeat(rd(err1, 'I'), 2)...)
	res, err := Run(reads, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 1 {
		t.Fatalf("variants = %+v", res.Variants)
	}
	if res.Variants[0].Seq != true1 || res.Variants[0].Abundance != 22 {
		t.Fatalf("winner = %+v", res.Variants[0])
	}
	if res.Absorbed != 1 {
		t.Fatalf("absorbed = %d", res.Absorbed)
	}
}

func TestDistinctVariantsKept(t *testing.T) {
	a := "ACGTACGTAC"
	b := "TGCATGCATG" // far away
	reads := append(repeat(rd(a, 'I'), 10), repeat(rd(b, 'I'), 10)...)
	res, err := Run(reads, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 2 {
		t.Fatalf("variants = %+v", res.Variants)
	}
}

func TestFoldDifferenceRequired(t *testing.T) {
	a := "ACGTACGTAC"
	b := "ACGTACGTAT" // 1 mismatch but nearly equal abundance
	reads := append(repeat(rd(a, 'I'), 10), repeat(rd(b, 'I'), 9)...)
	res, err := Run(reads, Options{MinFoldDifference: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 2 {
		t.Fatalf("similar-abundance variant absorbed: %+v", res.Variants)
	}
}

func TestUnequalLengthsNotMerged(t *testing.T) {
	reads := append(repeat(rd("ACGTACGTAC", 'I'), 20), repeat(rd("ACGTACGT", 'I'), 2)...)
	res, err := Run(reads, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 2 {
		t.Fatalf("variants = %+v", res.Variants)
	}
}

func TestVariantsSortedByAbundance(t *testing.T) {
	reads := append(repeat(rd("AAAAAAAAAA", 'I'), 3), repeat(rd("TTTTTTTTTT", 'I'), 7)...)
	res, err := Run(reads, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Variants[0].Abundance < res.Variants[1].Abundance {
		t.Fatalf("not sorted: %+v", res.Variants)
	}
}

func TestEmptyInput(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Fatal("want ErrNoReads")
	}
}

func TestAbundanceConserved(t *testing.T) {
	reads := append(repeat(rd("ACGTACGTAC", 'I'), 15), repeat(rd("ACGTACGTAT", 'I'), 3)...)
	reads = append(reads, repeat(rd("GGGGGGGGGG", 'I'), 4)...)
	res, err := Run(reads, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, v := range res.Variants {
		sum += v.Abundance
	}
	if sum+res.QualityDropped != res.Input {
		t.Fatalf("abundance %d + dropped %d != input %d", sum, res.QualityDropped, res.Input)
	}
}
