// Package variant applies VCF variant calls to a reference genome to
// reconstruct a consensus sequence — the core computation of the paper's
// 23-step Galaxy Genome Reconstruction workflow (VCF-described viral
// isolates against a SARS-CoV-2-like reference).
package variant

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"spotverse/internal/bioinf/vcf"
)

// Errors returned by the reconstructor.
var (
	ErrPosOutOfRange = errors.New("variant: position outside reference")
	ErrRefMismatch   = errors.New("variant: REF does not match reference")
	ErrOverlap       = errors.New("variant: overlapping variants")
)

// Options tune reconstruction.
type Options struct {
	// MinQual drops variants below this quality (0 keeps everything).
	MinQual float64
	// PassOnly drops variants whose FILTER is neither "PASS" nor ".".
	PassOnly bool
	// IgnoreRefMismatch skips (rather than fails on) REF mismatches.
	IgnoreRefMismatch bool
}

// Stats summarises a reconstruction.
type Stats struct {
	Applied       int
	FilteredQual  int
	FilteredPass  int
	SkippedRef    int
	Substitutions int
	Insertions    int
	Deletions     int
}

// Consensus applies the variants to the reference and returns the
// reconstructed sequence. Variants are applied in position order;
// overlapping REF spans are an error.
func Consensus(reference string, f *vcf.File, opts Options) (string, Stats, error) {
	var stats Stats
	variants := make([]vcf.Variant, len(f.Variants))
	copy(variants, f.Variants)
	sort.SliceStable(variants, func(i, j int) bool { return variants[i].Pos < variants[j].Pos })

	var sb strings.Builder
	sb.Grow(len(reference) + 64)
	cursor := 0 // 0-based index into reference, next base to copy
	for _, v := range variants {
		if opts.MinQual > 0 && v.Qual < opts.MinQual {
			stats.FilteredQual++
			continue
		}
		if opts.PassOnly && v.Filter != "PASS" && v.Filter != "." && v.Filter != "" {
			stats.FilteredPass++
			continue
		}
		start := v.Pos - 1
		end := start + len(v.Ref)
		if start < 0 || end > len(reference) {
			return "", stats, fmt.Errorf("%w: pos %d ref %q (reference length %d)", ErrPosOutOfRange, v.Pos, v.Ref, len(reference))
		}
		if start < cursor {
			return "", stats, fmt.Errorf("%w: pos %d overlaps prior variant", ErrOverlap, v.Pos)
		}
		if !strings.EqualFold(reference[start:end], v.Ref) {
			if opts.IgnoreRefMismatch {
				stats.SkippedRef++
				continue
			}
			return "", stats, fmt.Errorf("%w: pos %d expected %q found %q", ErrRefMismatch, v.Pos, v.Ref, reference[start:end])
		}
		sb.WriteString(reference[cursor:start])
		sb.WriteString(v.Alt)
		cursor = end
		stats.Applied++
		switch {
		case len(v.Ref) == len(v.Alt):
			stats.Substitutions++
		case len(v.Ref) < len(v.Alt):
			stats.Insertions++
		default:
			stats.Deletions++
		}
	}
	sb.WriteString(reference[cursor:])
	return sb.String(), stats, nil
}

// Identity returns the fraction of aligned positions (ungapped, by
// position) at which the two sequences agree, over the shorter length.
// It is a cheap reconstruction sanity metric, 0 for empty inputs.
func Identity(a, b string) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	same := 0
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(n)
}
