package variant

import (
	"errors"
	"strings"
	"testing"

	"spotverse/internal/bioinf/synth"
	"spotverse/internal/bioinf/vcf"
	"spotverse/internal/simclock"
)

func file(vs ...vcf.Variant) *vcf.File {
	return &vcf.File{Variants: vs}
}

func TestSubstitution(t *testing.T) {
	got, stats, err := Consensus("ACGTACGT", file(
		vcf.Variant{Chrom: "c", Pos: 3, Ref: "G", Alt: "T", Filter: "PASS"},
	), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != "ACTTACGT" {
		t.Fatalf("consensus = %q", got)
	}
	if stats.Applied != 1 || stats.Substitutions != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestInsertion(t *testing.T) {
	got, stats, err := Consensus("ACGT", file(
		vcf.Variant{Chrom: "c", Pos: 2, Ref: "C", Alt: "CTT", Filter: "PASS"},
	), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != "ACTTGT" {
		t.Fatalf("consensus = %q", got)
	}
	if stats.Insertions != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestDeletion(t *testing.T) {
	got, stats, err := Consensus("ACGTA", file(
		vcf.Variant{Chrom: "c", Pos: 2, Ref: "CGT", Alt: "C", Filter: "PASS"},
	), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != "ACA" {
		t.Fatalf("consensus = %q", got)
	}
	if stats.Deletions != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestVariantsAppliedInPositionOrder(t *testing.T) {
	got, _, err := Consensus("AAAAAA", file(
		vcf.Variant{Chrom: "c", Pos: 5, Ref: "A", Alt: "T"},
		vcf.Variant{Chrom: "c", Pos: 1, Ref: "A", Alt: "G"},
	), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != "GAAATA" {
		t.Fatalf("consensus = %q", got)
	}
}

func TestQualityFilter(t *testing.T) {
	got, stats, err := Consensus("ACGT", file(
		vcf.Variant{Chrom: "c", Pos: 1, Ref: "A", Alt: "T", Qual: 10},
		vcf.Variant{Chrom: "c", Pos: 3, Ref: "G", Alt: "C", Qual: 90},
	), Options{MinQual: 30})
	if err != nil {
		t.Fatal(err)
	}
	if got != "ACCT" || stats.FilteredQual != 1 {
		t.Fatalf("got %q stats %+v", got, stats)
	}
}

func TestPassOnlyFilter(t *testing.T) {
	got, stats, err := Consensus("ACGT", file(
		vcf.Variant{Chrom: "c", Pos: 1, Ref: "A", Alt: "T", Filter: "lowqual"},
	), Options{PassOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != "ACGT" || stats.FilteredPass != 1 {
		t.Fatalf("got %q stats %+v", got, stats)
	}
}

func TestRefMismatch(t *testing.T) {
	_, _, err := Consensus("ACGT", file(
		vcf.Variant{Chrom: "c", Pos: 1, Ref: "G", Alt: "T"},
	), Options{})
	if !errors.Is(err, ErrRefMismatch) {
		t.Fatalf("err = %v", err)
	}
	got, stats, err := Consensus("ACGT", file(
		vcf.Variant{Chrom: "c", Pos: 1, Ref: "G", Alt: "T"},
	), Options{IgnoreRefMismatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != "ACGT" || stats.SkippedRef != 1 {
		t.Fatalf("got %q stats %+v", got, stats)
	}
}

func TestPosOutOfRange(t *testing.T) {
	_, _, err := Consensus("ACGT", file(
		vcf.Variant{Chrom: "c", Pos: 5, Ref: "A", Alt: "T"},
	), Options{})
	if !errors.Is(err, ErrPosOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	_, _, err = Consensus("ACGT", file(
		vcf.Variant{Chrom: "c", Pos: 4, Ref: "TT", Alt: "T"},
	), Options{})
	if !errors.Is(err, ErrPosOutOfRange) {
		t.Fatalf("spanning-end err = %v", err)
	}
}

func TestOverlapRejected(t *testing.T) {
	_, _, err := Consensus("ACGTACGT", file(
		vcf.Variant{Chrom: "c", Pos: 2, Ref: "CGT", Alt: "C"},
		vcf.Variant{Chrom: "c", Pos: 3, Ref: "G", Alt: "A"},
	), Options{})
	if !errors.Is(err, ErrOverlap) {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyVCFIdentity(t *testing.T) {
	got, stats, err := Consensus("ACGT", file(), Options{})
	if err != nil || got != "ACGT" || stats.Applied != 0 {
		t.Fatalf("got %q stats %+v err %v", got, stats, err)
	}
}

// TestSynthRoundTrip is the key integration property: applying a
// synthesised VCF reproduces a genome that differs from the reference in
// the expected way, and most positions still match.
func TestSynthRoundTrip(t *testing.T) {
	rng := simclock.Stream(99, "variant-test")
	ref, err := synth.Genome(rng, 5000)
	if err != nil {
		t.Fatal(err)
	}
	// Substitutions only: positional identity stays meaningful.
	f, err := synth.Mutate(rng, ref, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Variants) == 0 {
		t.Fatal("no variants generated")
	}
	got, stats, err := Consensus(ref, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != len(f.Variants) {
		t.Fatalf("applied %d of %d", stats.Applied, len(f.Variants))
	}
	if len(got) != len(ref) {
		t.Fatalf("substitution-only consensus changed length: %d vs %d", len(got), len(ref))
	}
	id := Identity(got, ref)
	if id < 0.97 || id >= 1 {
		t.Fatalf("identity %v, want just under 1 for 1%% substitutions", id)
	}
	// Indels: consensus must change length but still apply cleanly.
	fi, err := synth.Mutate(rng, ref, 0, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	got2, stats2, err := Consensus(ref, fi, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Applied != len(fi.Variants) {
		t.Fatalf("indels applied %d of %d", stats2.Applied, len(fi.Variants))
	}
	if len(fi.Variants) > 0 && len(got2) == len(ref) {
		t.Fatal("indel consensus kept reference length")
	}
}

func TestIdentity(t *testing.T) {
	if Identity("ACGT", "ACGT") != 1 {
		t.Fatal("self identity != 1")
	}
	if Identity("AAAA", "TTTT") != 0 {
		t.Fatal("disjoint identity != 0")
	}
	if Identity("", "ACGT") != 0 {
		t.Fatal("empty identity != 0")
	}
	if Identity("ACGTAA", "ACGT") != 1 {
		t.Fatal("prefix identity over shorter length")
	}
	if got := Identity(strings.Repeat("A", 10), "AAAAATTTTT"); got != 0.5 {
		t.Fatalf("identity = %v, want 0.5", got)
	}
}
