package qc

import (
	"strings"
	"testing"

	"spotverse/internal/bioinf/fastq"
	"spotverse/internal/bioinf/synth"
	"spotverse/internal/simclock"
)

func mkReads(qual byte, n, length int) []fastq.Read {
	out := make([]fastq.Read, n)
	for i := range out {
		out[i] = fastq.Read{
			ID:   "r",
			Seq:  strings.Repeat("AC", length/2),
			Qual: strings.Repeat(string(qual), length),
		}
	}
	return out
}

func TestAnalyzeBasics(t *testing.T) {
	rep, err := Analyze("shard-0", mkReads('I', 10, 100)) // Q40
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReadCount != 10 || rep.MeanLength != 100 {
		t.Fatalf("rep = %+v", rep)
	}
	if rep.MeanQuality != 40 || rep.Q20Fraction != 1 {
		t.Fatalf("quality: %+v", rep)
	}
	if rep.GCFraction != 0.5 {
		t.Fatalf("gc = %v", rep.GCFraction)
	}
	if rep.QualityVerdict != VerdictPass || rep.GCVerdict != VerdictPass {
		t.Fatalf("verdicts: %v %v", rep.QualityVerdict, rep.GCVerdict)
	}
	if len(rep.PerPositionQuality) != 100 {
		t.Fatalf("per-position length = %d", len(rep.PerPositionQuality))
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze("x", nil); err == nil {
		t.Fatal("want ErrNoReads")
	}
}

func TestVerdictGrades(t *testing.T) {
	lowQ, _ := Analyze("low", mkReads('#', 5, 50)) // Q2
	if lowQ.QualityVerdict != VerdictFail {
		t.Fatalf("lowQ verdict = %v", lowQ.QualityVerdict)
	}
	midQ, _ := Analyze("mid", mkReads(33+24, 5, 50)) // Q24
	if midQ.QualityVerdict != VerdictWarn {
		t.Fatalf("midQ verdict = %v", midQ.QualityVerdict)
	}
}

func TestGCVerdict(t *testing.T) {
	allGC := []fastq.Read{{ID: "r", Seq: "GGGGCCCC", Qual: "IIIIIIII"}}
	rep, _ := Analyze("gc", allGC)
	if rep.GCVerdict != VerdictFail {
		t.Fatalf("gc verdict = %v for 100%% GC", rep.GCVerdict)
	}
}

func TestPerPositionQualityVariableLengths(t *testing.T) {
	reads := []fastq.Read{
		{ID: "a", Seq: "ACGT", Qual: "IIII"},
		{ID: "b", Seq: "AC", Qual: "##"},
	}
	rep, err := Analyze("v", reads)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerPositionQuality) != 4 {
		t.Fatalf("positions = %d", len(rep.PerPositionQuality))
	}
	if rep.PerPositionQuality[0] != 21 { // (40+2)/2
		t.Fatalf("pos0 = %v", rep.PerPositionQuality[0])
	}
	if rep.PerPositionQuality[3] != 40 { // only long read
		t.Fatalf("pos3 = %v", rep.PerPositionQuality[3])
	}
}

func TestCombine(t *testing.T) {
	a, _ := Analyze("b-shard", mkReads('I', 10, 50))
	b, _ := Analyze("a-shard", mkReads('#', 5, 50))
	agg, err := Combine([]*Report{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Files != 2 || agg.TotalReads != 15 {
		t.Fatalf("agg = %+v", agg)
	}
	if agg.PassCount != 1 || agg.FailCount != 1 {
		t.Fatalf("verdict counts = %+v", agg)
	}
	if agg.BestQuality != 40 || agg.WorstQuality != 2 {
		t.Fatalf("best/worst = %v/%v", agg.BestQuality, agg.WorstQuality)
	}
	// Rows sorted by name: a-shard first.
	if !strings.HasPrefix(agg.Rows[0], "a-shard") {
		t.Fatalf("rows = %v", agg.Rows)
	}
	if !strings.Contains(agg.String(), "multiqc: 2 files") {
		t.Fatalf("String() = %q", agg.String())
	}
}

func TestCombineEmpty(t *testing.T) {
	if _, err := Combine(nil); err == nil {
		t.Fatal("want ErrNoReads")
	}
}

func TestAnalyzeSyntheticReads(t *testing.T) {
	rng := simclock.Stream(3, "qc-test")
	tmpl, err := synth.Genome(rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	reads, err := synth.Reads(rng, tmpl, synth.ReadsOptions{Count: 200, Length: 100, ErrorRate: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze("synth", reads)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanQuality < 25 || rep.MeanQuality > 40 {
		t.Fatalf("synthetic mean quality %v implausible", rep.MeanQuality)
	}
	if rep.GCVerdict == VerdictFail {
		t.Fatalf("balanced synthetic genome failed GC check: %v", rep.GCFraction)
	}
}
