// Package qc implements FastQC-style per-file quality reports and a
// MultiQC-style aggregation across files — the first two tools of the NGS
// Data Preprocessing workflow.
package qc

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"spotverse/internal/bioinf/fastq"
)

// ErrNoReads is returned when a report is requested for zero reads.
var ErrNoReads = errors.New("qc: no reads")

// Verdict grades a quality module, FastQC-style.
type Verdict string

// Verdicts.
const (
	VerdictPass Verdict = "pass"
	VerdictWarn Verdict = "warn"
	VerdictFail Verdict = "fail"
)

// Report is a FastQC-like summary of one read set.
type Report struct {
	// Name labels the input (usually the file/shard name).
	Name string
	// ReadCount is the number of reads analysed.
	ReadCount int
	// MeanLength is the average read length.
	MeanLength float64
	// MeanQuality is the average Phred score over all bases.
	MeanQuality float64
	// PerPositionQuality holds mean Phred per cycle, up to the longest
	// read.
	PerPositionQuality []float64
	// GCFraction is the overall GC content.
	GCFraction float64
	// Q20Fraction is the fraction of bases at or above Q20.
	Q20Fraction float64
	// QualityVerdict grades mean base quality.
	QualityVerdict Verdict
	// GCVerdict grades GC content (expected ~0.4-0.6).
	GCVerdict Verdict
}

// Analyze builds a report for one read set.
func Analyze(name string, reads []fastq.Read) (*Report, error) {
	if len(reads) == 0 {
		return nil, fmt.Errorf("analyze %q: %w", name, ErrNoReads)
	}
	maxLen := 0
	for _, r := range reads {
		if len(r.Seq) > maxLen {
			maxLen = len(r.Seq)
		}
	}
	posSum := make([]float64, maxLen)
	posCount := make([]int, maxLen)
	var (
		totalBases, q20, gcBases int
		lenSum, qualSum          float64
	)
	for _, r := range reads {
		lenSum += float64(len(r.Seq))
		for i, q := range r.QualityScores() {
			posSum[i] += float64(q)
			posCount[i]++
			qualSum += float64(q)
			totalBases++
			if q >= 20 {
				q20++
			}
		}
		for i := 0; i < len(r.Seq); i++ {
			switch r.Seq[i] {
			case 'G', 'g', 'C', 'c':
				gcBases++
			}
		}
	}
	rep := &Report{
		Name:               name,
		ReadCount:          len(reads),
		MeanLength:         lenSum / float64(len(reads)),
		PerPositionQuality: make([]float64, maxLen),
	}
	if totalBases > 0 {
		rep.MeanQuality = qualSum / float64(totalBases)
		rep.Q20Fraction = float64(q20) / float64(totalBases)
		rep.GCFraction = float64(gcBases) / float64(totalBases)
	}
	for i := range posSum {
		if posCount[i] > 0 {
			rep.PerPositionQuality[i] = posSum[i] / float64(posCount[i])
		}
	}
	rep.QualityVerdict = gradeQuality(rep.MeanQuality)
	rep.GCVerdict = gradeGC(rep.GCFraction)
	return rep, nil
}

func gradeQuality(mean float64) Verdict {
	switch {
	case mean >= 28:
		return VerdictPass
	case mean >= 20:
		return VerdictWarn
	default:
		return VerdictFail
	}
}

func gradeGC(gc float64) Verdict {
	switch {
	case gc >= 0.35 && gc <= 0.65:
		return VerdictPass
	case gc >= 0.25 && gc <= 0.75:
		return VerdictWarn
	default:
		return VerdictFail
	}
}

// Aggregate is a MultiQC-style roll-up over per-file reports.
type Aggregate struct {
	Files        int
	TotalReads   int
	MeanQuality  float64
	WorstQuality float64
	BestQuality  float64
	FailCount    int
	WarnCount    int
	PassCount    int
	// Rows are per-report one-line summaries, sorted by name.
	Rows []string
}

// Combine rolls reports into an aggregate.
func Combine(reports []*Report) (*Aggregate, error) {
	if len(reports) == 0 {
		return nil, ErrNoReads
	}
	agg := &Aggregate{Files: len(reports), BestQuality: -1, WorstQuality: 1e9}
	var qualSum float64
	sorted := make([]*Report, len(reports))
	copy(sorted, reports)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, rep := range sorted {
		agg.TotalReads += rep.ReadCount
		qualSum += rep.MeanQuality
		if rep.MeanQuality > agg.BestQuality {
			agg.BestQuality = rep.MeanQuality
		}
		if rep.MeanQuality < agg.WorstQuality {
			agg.WorstQuality = rep.MeanQuality
		}
		switch rep.QualityVerdict {
		case VerdictPass:
			agg.PassCount++
		case VerdictWarn:
			agg.WarnCount++
		default:
			agg.FailCount++
		}
		agg.Rows = append(agg.Rows, fmt.Sprintf("%s\treads=%d\tmeanQ=%.1f\tQ20=%.1f%%\t%s",
			rep.Name, rep.ReadCount, rep.MeanQuality, rep.Q20Fraction*100, rep.QualityVerdict))
	}
	agg.MeanQuality = qualSum / float64(len(reports))
	return agg, nil
}

// String renders the aggregate as a small text report.
func (a *Aggregate) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "multiqc: %d files, %d reads, meanQ %.1f (worst %.1f, best %.1f), pass/warn/fail %d/%d/%d\n",
		a.Files, a.TotalReads, a.MeanQuality, a.WorstQuality, a.BestQuality, a.PassCount, a.WarnCount, a.FailCount)
	for _, row := range a.Rows {
		sb.WriteString("  " + row + "\n")
	}
	return sb.String()
}
