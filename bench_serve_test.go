package spotverse

// Serving-path benchmarks for cmd/spotverse-serve: the warm /v1/place
// hot path (sustained QPS, tail latency, allocation count) and the
// deterministic overload replay pipeline. Snapshot into BENCH_N.json
// via `make bench`; compare with `make bench-compare`.

import (
	"context"
	"sort"
	"testing"
	"time"

	"spotverse/internal/chaos"
	"spotverse/internal/experiment"
	"spotverse/internal/serve"
)

// benchServeSim deploys a chaos-free serving environment with a warmed
// server; failures abort the benchmark.
func benchServeSim(b *testing.B, cfg serve.Config) (*experiment.ServeSim, *serve.Server) {
	b.Helper()
	sim, err := experiment.NewServeSim(benchSeed, chaos.Off)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Clock = sim.Env.Engine
	srv, err := serve.New(cfg, sim.Backend)
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.Warm(srv, 5); err != nil {
		b.Fatal(err)
	}
	return sim, srv
}

// BenchmarkServePlaceWarm drives the warm /v1/place backend path —
// memoized advisor snapshot, round-robin spread, in-place response
// fill — and reports sustained QPS plus wall-clock p50/p99 per
// placement. The warm path must stay within a few allocs/op.
func BenchmarkServePlaceWarm(b *testing.B) {
	sim, _ := benchServeSim(b, serve.Config{Workers: 4, RatePerSec: 1e9})
	ctx := context.Background()
	req := serve.PlaceRequest{WorkloadID: "bench"}
	var resp serve.PlaceResponse
	if err := sim.Backend.Place(ctx, &req, &resp); err != nil {
		b.Fatal(err)
	}
	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := sim.Backend.Place(ctx, &req, &resp); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	elapsed := b.Elapsed()
	b.StopTimer()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if n := len(lat); n > 0 {
		b.ReportMetric(float64(lat[n/2].Nanoseconds())/1e3, "p50_us")
		b.ReportMetric(float64(lat[n*99/100].Nanoseconds())/1e3, "p99_us")
	}
}

// BenchmarkServeReplayOverload runs the deterministic overload replay —
// 5000 requests at ~4x the admission-controlled service rate — and
// reports wall-clock replay throughput plus the simulated p99 of
// answered requests. Environment construction sits outside the timer;
// the measured work is the gate pipeline + virtual worker engine.
func BenchmarkServeReplayOverload(b *testing.B) {
	const n = 5000
	trace := experiment.GenerateServeTrace(benchSeed, n, 600)
	cfg := serve.Config{
		Workers:          4,
		QueueDepth:       32,
		RatePerSec:       100000,
		Deadline:         5 * time.Second,
		MaxEstimatedWait: 500 * time.Millisecond,
		ServiceTime:      25 * time.Millisecond,
	}
	var sum *serve.ReplaySummary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sim, srv := benchServeSim(b, cfg)
		b.StartTimer()
		var err error
		sum, err = srv.Replay(sim.Env.Engine, trace, serve.ReplayOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	elapsed := b.Elapsed()
	b.StopTimer()
	if elapsed > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/elapsed.Seconds(), "req/s")
	}
	if sum != nil {
		b.ReportMetric(float64(sum.P99MS), "sim_p99_ms")
		b.ReportMetric(float64(sum.Shed)/float64(sum.Requests), "shed_frac")
	}
}
