package spotverse

import (
	"testing"
	"time"

	"spotverse/internal/catalog"
	"spotverse/internal/market"
	"spotverse/internal/simclock"
)

// Cold vs shared market materialisation for the paper's multi-arm
// comparison cells. Each benchmark replays the market footprint one
// figure's strategy arms issue — the baseline-region ranking, the
// Monitor's daily advisor scans, and the Provider's per-launch
// interruption scans — in two modes:
//
//   - cold builds a fresh private market per arm, the pre-snapshot
//     behaviour (every arm regenerates every walk);
//   - shared points all arms at one SnapshotStore snapshot, so the seed
//     materialises once and the remaining arms are pure reads.
//
// Everything runs single-threaded, so shared/cold measures regeneration
// elimination, not parallelism. `make bench-compare` diffs these
// against the previous BENCH snapshot alongside the full-figure
// benchmarks in bench_test.go.

// armFootprint issues one strategy arm's market queries over the
// horizon: one opening-weeks region ranking, a daily advisor scan, and
// a 60-day price-walk scan per offered region (the interruption
// scheduler's read pattern).
func armFootprint(b *testing.B, m *market.Model, days int) {
	b.Helper()
	typ := catalog.M5XLarge
	start := m.Start()
	end := start.Add(time.Duration(days) * 24 * time.Hour)
	if _, _, err := m.CheapestSpotRegion(typ, start, start.Add(14*24*time.Hour)); err != nil {
		b.Fatal(err)
	}
	for at := start; at.Before(end); at = at.Add(24 * time.Hour) {
		if _, err := m.AdvisorSnapshot(typ, at); err != nil {
			b.Fatal(err)
		}
	}
	scanEnd := start.Add(60 * 24 * time.Hour)
	for _, r := range m.Catalog().OfferedRegions(typ) {
		ps, err := m.PriceSeries(typ, m.Catalog().Zones(r)[0])
		if err != nil {
			b.Fatal(err)
		}
		for at := start; at.Before(scanEnd); at = at.Add(market.PriceStep) {
			_ = ps.At(at)
		}
	}
}

// benchSnapshotCell times one figure cell's market work: arms strategy
// arms over a days-long horizon, cold vs shared.
func benchSnapshotCell(b *testing.B, arms, days int) {
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for a := 0; a < arms; a++ {
				armFootprint(b, market.New(catalog.Default(), benchSeed, simclock.Epoch), days)
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A fresh store per iteration: the cell pays one
			// materialisation and arms-1 snapshot hits, exactly what a
			// figure runner sees on a new seed.
			st := market.NewSnapshotStore(catalog.Default(), 0)
			for a := 0; a < arms; a++ {
				armFootprint(b, market.FromSnapshot(st.Acquire(benchSeed, simclock.Epoch)), days)
			}
		}
	})
}

// BenchmarkSnapshotFig7Cell: Fig. 7 builds six envs per seed (two
// workload kinds × three strategies).
func BenchmarkSnapshotFig7Cell(b *testing.B) { benchSnapshotCell(b, 6, 30) }

// BenchmarkSnapshotFig10Cell: Fig. 10's threshold grid runs 18 arms (9
// cells × spotverse + on-demand) against one seed over 90 days.
func BenchmarkSnapshotFig10Cell(b *testing.B) { benchSnapshotCell(b, 18, 90) }

// BenchmarkSnapshotTable4Cell: Table 4 contrasts SpotVerse with the
// SkyPilot-style contender, two arms per seed.
func BenchmarkSnapshotTable4Cell(b *testing.B) { benchSnapshotCell(b, 2, 30) }

// BenchmarkSnapshotAcquire is the store's warm hit path: the cost a
// second arm pays to join an already-materialised seed.
func BenchmarkSnapshotAcquire(b *testing.B) {
	st := market.NewSnapshotStore(catalog.Default(), 0)
	armFootprint(b, market.FromSnapshot(st.Acquire(benchSeed, simclock.Epoch)), 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.Acquire(benchSeed, simclock.Epoch)
	}
}
